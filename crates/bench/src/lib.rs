//! Shared experiment harness for the Helios paper-reproduction benches.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see `DESIGN.md` §3 for the index). This library holds what they
//! share: experiment specifications, environment construction, strategy
//! sweeps, curve printing, and CSV output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;

pub use config::{ConfigError, ExperimentConfig};

use helios_core::{HeliosConfig, HeliosStrategy};
use helios_data::{partition, Dataset, SyntheticVision};
use helios_device::presets;
use helios_fl::{Afo, AsyncFl, FlConfig, FlEnv, RandomPartial, RunMetrics, Strategy, SyncFedAvg};
use helios_nn::models::ModelKind;
use helios_tensor::TensorRng;
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// The three paper dataset/model pairings (§VII.A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// LeNet on the MNIST-like synthetic dataset.
    LenetMnist,
    /// AlexNet on the CIFAR-10-like synthetic dataset.
    AlexnetCifar10,
    /// ResNet-18 on the CIFAR-100-like synthetic dataset.
    Resnet18Cifar100,
}

impl Workload {
    /// All three pairings, in the paper's order.
    pub const ALL: [Workload; 3] = [
        Workload::LenetMnist,
        Workload::AlexnetCifar10,
        Workload::Resnet18Cifar100,
    ];

    /// Parses a workload name (`mnist`, `cifar10`, `cifar100`).
    pub fn parse(s: &str) -> Option<Workload> {
        match s {
            "mnist" => Some(Workload::LenetMnist),
            "cifar10" => Some(Workload::AlexnetCifar10),
            "cifar100" => Some(Workload::Resnet18Cifar100),
            _ => None,
        }
    }

    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            Workload::LenetMnist => "lenet/mnist",
            Workload::AlexnetCifar10 => "alexnet/cifar10",
            Workload::Resnet18Cifar100 => "resnet18/cifar100",
        }
    }

    /// The synthetic dataset generator, tuned so federated convergence
    /// takes tens of cycles (difficulty ladder: MNIST < CIFAR-10 <
    /// CIFAR-100, as in the paper).
    pub fn dataset_spec(self) -> SyntheticVision {
        match self {
            Workload::LenetMnist => SyntheticVision {
                noise_std: 1.3,
                ..SyntheticVision::mnist_like()
            },
            Workload::AlexnetCifar10 => SyntheticVision {
                noise_std: 1.5,
                ..SyntheticVision::cifar10_like()
            },
            Workload::Resnet18Cifar100 => SyntheticVision {
                noise_std: 1.2,
                ..SyntheticVision::cifar100_like()
            },
        }
    }

    /// The matching model architecture.
    pub fn model(self) -> ModelKind {
        match self {
            Workload::LenetMnist => ModelKind::LeNet,
            Workload::AlexnetCifar10 => ModelKind::AlexNet,
            Workload::Resnet18Cifar100 => ModelKind::ResNet18,
        }
    }

    /// Aggregation cycles the paper's Fig 5 runs for this workload
    /// (MNIST converges in ~10, CIFAR-10 in ~18, CIFAR-100 in ~50).
    pub fn default_cycles(self) -> usize {
        match self {
            Workload::LenetMnist => 20,
            Workload::AlexnetCifar10 => 25,
            Workload::Resnet18Cifar100 => 50,
        }
    }
}

/// One experiment's fleet and data configuration.
#[derive(Debug, Clone)]
pub struct ExperimentSpec {
    /// Dataset/model pairing.
    pub workload: Workload,
    /// Number of capable (full-power) devices.
    pub capable: usize,
    /// Number of straggler devices (Table I presets, cycled).
    pub stragglers: usize,
    /// Training samples per client.
    pub per_client: usize,
    /// Held-out test samples.
    pub test_samples: usize,
    /// Label-shard Non-IID split instead of IID.
    pub non_iid: bool,
    /// Master seed.
    pub seed: u64,
}

impl ExperimentSpec {
    /// The paper's standard fleets: 4 devices (2 capable + 2 stragglers)
    /// or 6 devices (3 + 3), §VII.B.
    pub fn paper_fleet(workload: Workload, devices: usize, non_iid: bool, seed: u64) -> Self {
        let stragglers = devices / 2;
        ExperimentSpec {
            workload,
            capable: devices - stragglers,
            stragglers,
            per_client: 120,
            test_samples: 300,
            non_iid,
            seed,
        }
    }

    /// Total fleet size.
    pub fn devices(&self) -> usize {
        self.capable + self.stragglers
    }

    /// Client indices of the stragglers (the fleet builder places capable
    /// devices first).
    pub fn straggler_ids(&self) -> Vec<usize> {
        (self.capable..self.devices()).collect()
    }

    /// Builds a fresh environment for one strategy run.
    ///
    /// # Panics
    ///
    /// Panics on internal construction errors (invalid spec).
    pub fn build_env(&self) -> FlEnv {
        let mut rng = TensorRng::seed_from(self.seed);
        let clients = self.devices();
        let (train, test) = self
            .workload
            .dataset_spec()
            .generate(self.per_client * clients, self.test_samples, &mut rng)
            .expect("dataset generation cannot fail for valid specs");
        let idx_sets = if self.non_iid {
            // Zhao et al. label shards: 2 shards per client (§VII.D).
            partition::label_shards(train.labels(), clients, 2, &mut rng)
                .expect("shard partition fits")
        } else {
            partition::iid(train.len(), clients, &mut rng)
        };
        let shards: Vec<Dataset> = idx_sets
            .into_iter()
            .map(|idx| train.subset(&idx).expect("indices in range"))
            .collect();
        FlEnv::new(
            self.workload.model(),
            presets::mixed_fleet(self.capable, self.stragglers),
            shards,
            test,
            FlConfig {
                seed: self.seed,
                learning_rate: 0.04,
                ..FlConfig::default()
            },
        )
        .expect("environment construction cannot fail for valid specs")
    }

    /// Initializes a Helios strategy against a scratch environment and
    /// returns the fitted keep ratio per client (`None` for capable
    /// devices) — handed to the Random baseline so both train the same
    /// expected volumes, as in the paper's comparison.
    pub fn helios_volumes(&self) -> Vec<Option<f64>> {
        let mut env = self.build_env();
        let mut helios = HeliosStrategy::new(HeliosConfig::default());
        helios
            .initialize(&mut env)
            .expect("initialization succeeds on paper fleets");
        (0..self.devices()).map(|i| helios.keep_ratio(i)).collect()
    }
}

/// Which strategies a sweep covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategySet {
    /// All five of §VII.A: Syn. FL, Asyn. FL, AFO, Random, Helios.
    Paper,
    /// Helios vs soft-training-only (Fig 6 ablation).
    AggregationAblation,
}

/// Runs the selected strategies, each against a fresh identically-seeded
/// environment, for `cycles` aggregation cycles.
///
/// # Panics
///
/// Panics when a strategy fails (impossible for valid specs).
pub fn run_strategies(spec: &ExperimentSpec, set: StrategySet, cycles: usize) -> Vec<RunMetrics> {
    let straggler_ids = spec.straggler_ids();
    let mut out = Vec::new();
    match set {
        StrategySet::Paper => {
            let volumes = spec.helios_volumes();
            let runs: Vec<Box<dyn Strategy>> = vec![
                Box::new(SyncFedAvg::new()),
                Box::new(AsyncFl::new(straggler_ids.clone())),
                Box::new(Afo::new(straggler_ids)),
                Box::new(RandomPartial::new(volumes)),
                Box::new(HeliosStrategy::new(HeliosConfig::default())),
            ];
            for mut s in runs {
                let mut env = spec.build_env();
                out.push(s.run(&mut env, cycles).expect("strategy run succeeds"));
            }
        }
        StrategySet::AggregationAblation => {
            for config in [HeliosConfig::soft_training_only(), HeliosConfig::default()] {
                let mut env = spec.build_env();
                let mut s = HeliosStrategy::new(config);
                out.push(s.run(&mut env, cycles).expect("strategy run succeeds"));
            }
        }
    }
    out
}

/// Runs a single Helios configuration against a fresh environment
/// (ablation helper).
///
/// # Panics
///
/// Panics when the run fails (impossible for valid specs/configs).
pub fn run_strategies_with_config(
    spec: &ExperimentSpec,
    config: HeliosConfig,
    cycles: usize,
) -> RunMetrics {
    let mut env = spec.build_env();
    let mut s = HeliosStrategy::new(config);
    s.run(&mut env, cycles).expect("helios run succeeds")
}

/// Averages the per-cycle accuracy curves of several same-strategy runs
/// (multi-seed smoothing). All runs must have equal length.
///
/// # Panics
///
/// Panics when `runs` is empty or lengths differ.
pub fn mean_accuracy_curve(runs: &[RunMetrics]) -> Vec<f64> {
    assert!(!runs.is_empty(), "need at least one run");
    let len = runs[0].records().len();
    for r in runs {
        assert_eq!(r.records().len(), len, "curve lengths differ");
    }
    (0..len)
        .map(|i| {
            runs.iter()
                .map(|r| r.records()[i].test_accuracy)
                .sum::<f64>()
                / runs.len() as f64
        })
        .collect()
}

/// Renders accuracy-vs-cycle curves as an aligned text table (one row per
/// strategy, sampled every `step` cycles), the textual analogue of the
/// paper's figure panels.
pub fn format_curves(metrics: &[RunMetrics], step: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<16} {:>7} {:>7} {:>9}  accuracy @ every {} cycles",
        "strategy",
        "best",
        "tail3",
        "sim_time",
        step.max(1)
    );
    for m in metrics {
        let pts: Vec<String> = m
            .records()
            .iter()
            .step_by(step.max(1))
            .map(|r| format!("{:.3}", r.test_accuracy))
            .collect();
        let _ = writeln!(
            out,
            "{:<16} {:>7.4} {:>7.4} {:>9}  {}",
            m.strategy(),
            m.best_accuracy(),
            m.tail_accuracy(3),
            m.total_time().to_string(),
            pts.join(" ")
        );
    }
    out
}

/// Prints the paper's headline comparisons for a strategy sweep: best /
/// converged accuracy, and simulated-time speedups over Syn. FL at a
/// common target accuracy (the paper's "up to 2.5×" metric).
pub fn format_summary(metrics: &[RunMetrics], target: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<16} {:>8} {:>8} {:>12} {:>14} {:>10}",
        "strategy", "best", "tail3", "t@target", "speedup_vs[0]", "comm(MB)"
    );
    let reference = metrics.first();
    for m in metrics {
        let t = m.time_to_reach(target);
        let speedup = reference
            .and_then(|r| m.speedup_over(r, target))
            .map(|s| format!("{s:.2}x"))
            .unwrap_or_else(|| "—".into());
        let _ = writeln!(
            out,
            "{:<16} {:>8.4} {:>8.4} {:>12} {:>14} {:>10.2}",
            m.strategy(),
            m.best_accuracy(),
            m.tail_accuracy(3),
            t.map(|t| t.to_string()).unwrap_or_else(|| "—".into()),
            speedup,
            m.total_comm_bytes() / (1 << 20) as f64,
        );
    }
    out
}

/// Writes one CSV per run into `dir` (created if missing), named
/// `<prefix>_<strategy>.csv`.
///
/// # Errors
///
/// Returns I/O errors from directory creation or file writes.
pub fn write_csvs(dir: &Path, prefix: &str, metrics: &[RunMetrics]) -> std::io::Result<()> {
    fs::create_dir_all(dir)?;
    for m in metrics {
        let path = dir.join(format!("{prefix}_{}.csv", m.strategy()));
        fs::write(path, m.to_csv())?;
    }
    Ok(())
}

/// Default results directory (`results/` under the workspace root).
pub fn results_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_parsing_and_labels() {
        assert_eq!(Workload::parse("mnist"), Some(Workload::LenetMnist));
        assert_eq!(
            Workload::parse("cifar100"),
            Some(Workload::Resnet18Cifar100)
        );
        assert_eq!(Workload::parse("bogus"), None);
        for w in Workload::ALL {
            assert!(!w.label().is_empty());
            assert!(w.default_cycles() >= 20);
        }
    }

    #[test]
    fn dataset_difficulty_ladder_is_ordered() {
        // MNIST-like must stay the easiest workload: single channel and
        // the lowest class-count-to-noise pressure.
        let mnist = Workload::LenetMnist.dataset_spec();
        let cifar10 = Workload::AlexnetCifar10.dataset_spec();
        let cifar100 = Workload::Resnet18Cifar100.dataset_spec();
        assert_eq!(mnist.channels, 1);
        assert_eq!(cifar10.channels, 3);
        assert_eq!(cifar100.num_classes, 100);
        assert!(cifar10.noise_std >= mnist.noise_std);
    }

    #[test]
    fn paper_fleet_shapes() {
        let s4 = ExperimentSpec::paper_fleet(Workload::LenetMnist, 4, false, 1);
        assert_eq!((s4.capable, s4.stragglers), (2, 2));
        assert_eq!(s4.straggler_ids(), vec![2, 3]);
        let s6 = ExperimentSpec::paper_fleet(Workload::LenetMnist, 6, true, 1);
        assert_eq!((s6.capable, s6.stragglers), (3, 3));
        assert!(s6.non_iid);
    }

    #[test]
    fn build_env_and_volumes() {
        let spec = ExperimentSpec {
            per_client: 40,
            test_samples: 40,
            ..ExperimentSpec::paper_fleet(Workload::LenetMnist, 4, false, 2)
        };
        let env = spec.build_env();
        assert_eq!(env.num_clients(), 4);
        let volumes = spec.helios_volumes();
        assert_eq!(volumes.len(), 4);
        assert!(volumes[0].is_none() && volumes[1].is_none());
        assert!(volumes[2].unwrap() < 1.0);
        assert!(volumes[3].unwrap() < 1.0);
    }

    #[test]
    fn mean_curve_averages_pointwise() {
        use helios_device::SimTime;
        use helios_fl::RoundRecord;
        let mk = |accs: &[f64]| {
            let mut m = RunMetrics::new("x");
            for (i, &a) in accs.iter().enumerate() {
                m.push(RoundRecord {
                    cycle: i,
                    sim_time: SimTime::from_secs(i as f64),
                    test_accuracy: a,
                    test_loss: 0.0,
                    participants: 1,
                    comm_bytes: 0.0,
                    phases: Default::default(),
                });
            }
            m
        };
        let mean = mean_accuracy_curve(&[mk(&[0.2, 0.4]), mk(&[0.4, 0.8])]);
        assert_eq!(mean, vec![0.30000000000000004, 0.6000000000000001]);
    }

    #[test]
    fn formatting_contains_strategy_names() {
        let spec = ExperimentSpec {
            per_client: 30,
            test_samples: 30,
            ..ExperimentSpec::paper_fleet(Workload::LenetMnist, 2, false, 3)
        };
        let metrics = run_strategies(&spec, StrategySet::AggregationAblation, 2);
        let curves = format_curves(&metrics, 1);
        assert!(curves.contains("helios_st_only"));
        assert!(curves.contains("helios"));
        let summary = format_summary(&metrics, 0.01);
        assert!(summary.contains("speedup"));
    }
}
