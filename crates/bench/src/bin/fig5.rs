//! **Fig 5** — soft-training effectiveness: the paper's main result.
//!
//! Accuracy vs aggregation cycles for the full cross product of
//! {LeNet+MNIST, AlexNet+CIFAR-10, ResNet-18+CIFAR-100} ×
//! {4 devices / 2 stragglers, 6 devices / 3 stragglers} ×
//! {Syn. FL, Asyn. FL, AFO, Random, Helios}.
//!
//! Shape targets from the paper: Asyn. FL lowest accuracy; Syn. FL
//! slowest in simulated time (straggler-bound cycles); Helios best or
//! near-best accuracy with capable-pace cycles, yielding up to ~2.5×
//! simulated-time speedup to the common accuracy target.
//!
//! Usage: `fig5 [mnist|cifar10|cifar100] [cycles]` — no argument sweeps
//! all three workloads at their default cycle counts.

use helios_bench::{
    format_curves, format_summary, results_dir, run_strategies, write_csvs, ExperimentSpec,
    StrategySet, Workload,
};

fn target_for(w: Workload) -> f64 {
    match w {
        Workload::LenetMnist => 0.70,
        Workload::AlexnetCifar10 => 0.55,
        Workload::Resnet18Cifar100 => 0.30,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let workloads: Vec<Workload> = match args.get(1).map(String::as_str) {
        Some(name) => vec![Workload::parse(name).unwrap_or_else(|| {
            eprintln!("unknown workload {name}; use mnist|cifar10|cifar100");
            std::process::exit(2);
        })],
        None => Workload::ALL.to_vec(),
    };
    let cycles_override: Option<usize> = args.get(2).and_then(|s| s.parse().ok());

    for workload in workloads {
        let cycles = cycles_override.unwrap_or_else(|| workload.default_cycles());
        for devices in [4usize, 6] {
            let spec = ExperimentSpec::paper_fleet(workload, devices, false, 42);
            println!(
                "=== Fig 5: {} · {} devices ({} stragglers) · {} cycles ===",
                workload.label(),
                devices,
                spec.stragglers,
                cycles
            );
            let metrics = run_strategies(&spec, StrategySet::Paper, cycles);
            println!("{}", format_curves(&metrics, (cycles / 10).max(1)));
            println!("{}", format_summary(&metrics, target_for(workload)));
            let prefix = format!("fig5_{}_{}dev", workload.label().replace('/', "_"), devices);
            write_csvs(&results_dir().join("fig5"), &prefix, &metrics)
                .expect("results directory is writable");
        }
    }
}
