//! **BENCH_engine** — per-phase cost breakdown of the round-lifecycle
//! engine.
//!
//! Runs one straggler-heavy workload (constrained uplinks, networking
//! enabled) through all five strategies and records what the unified
//! [`helios_fl::RoundDriver`] measured for every cycle: simulated train
//! and communication time, wire bytes and retries, missed deliveries,
//! and kernel flops. Writes `results/BENCH_engine.json`, then re-parses
//! its own output and asserts the paper's headline effect — under
//! Helios, soft-trained stragglers shrink the train phase's share of
//! the round versus synchronous FedAvg — exiting nonzero otherwise.

use helios_bench::results_dir;
use helios_core::{HeliosConfig, HeliosStrategy};
use helios_data::{partition, Dataset, SyntheticVision};
use helios_device::presets;
use helios_fl::{
    Afo, AsyncFl, FlConfig, FlEnv, LinkProfile, NetConfig, RandomPartial, Strategy, SyncFedAvg,
};
use helios_nn::models::ModelKind;
use helios_tensor::TensorRng;
use serde::{Deserialize, Serialize};

const SEED: u64 = 42;
const CYCLES: usize = 3;
const CAPABLE: usize = 2;
const STRAGGLERS: usize = 2;

/// Capable devices sit behind a fast, low-latency link.
const CAPABLE_LINK: LinkProfile = LinkProfile::constrained(50e6, 0.01);
/// Stragglers get the paper's constrained edge uplink.
const STRAGGLER_LINK: LinkProfile = LinkProfile::constrained(2e6, 0.05);

#[derive(Debug, Serialize, Deserialize)]
struct CycleReport {
    cycle: usize,
    train_s: f64,
    comm_s: f64,
    comm_bytes: f64,
    wire_bytes: u64,
    retries: u64,
    missed: usize,
    aggregated_updates: usize,
    train_flops: u64,
    eval_flops: u64,
}

#[derive(Debug, Serialize, Deserialize)]
struct RunReport {
    strategy: String,
    total_sim_time_s: f64,
    total_train_s: f64,
    total_comm_s: f64,
    /// Fraction of simulated round time spent in the train phase.
    train_share: f64,
    /// Simulated local-training time of each device under its final
    /// mask state (capable devices first, stragglers after).
    device_train_s: Vec<f64>,
    /// The slowest straggler's local-training time as a fraction of the
    /// mean cycle span — how much of the round the straggler spends
    /// training. Helios shrinks this by soft-training stragglers.
    straggler_train_share: f64,
    total_wire_bytes: u64,
    cycles: Vec<CycleReport>,
}

#[derive(Debug, Serialize, Deserialize)]
struct EngineBenchReport {
    seed: u64,
    cycles: usize,
    capable: usize,
    stragglers: usize,
    runs: Vec<RunReport>,
}

fn make_env() -> FlEnv {
    let clients = CAPABLE + STRAGGLERS;
    let mut rng = TensorRng::seed_from(SEED);
    let (train, test) = SyntheticVision::mnist_like()
        .generate(40 * clients, 40, &mut rng)
        .expect("dataset");
    let shards: Vec<Dataset> = partition::iid(train.len(), clients, &mut rng)
        .into_iter()
        .map(|idx| train.subset(&idx).expect("subset"))
        .collect();
    let mut env = FlEnv::new(
        ModelKind::LeNet,
        presets::mixed_fleet(CAPABLE, STRAGGLERS),
        shards,
        test,
        FlConfig {
            seed: SEED,
            net: NetConfig {
                enabled: true,
                link: CAPABLE_LINK,
                ..NetConfig::default()
            },
            ..FlConfig::default()
        },
    )
    .expect("env");
    // mixed_fleet puts capable devices first, stragglers after.
    for i in CAPABLE..clients {
        env.set_link(i, STRAGGLER_LINK).expect("set_link");
    }
    env
}

fn run_report(strategy: &mut dyn Strategy) -> RunReport {
    let mut env = make_env();
    let metrics = strategy.run(&mut env, CYCLES).expect("strategy run");
    let cycles: Vec<CycleReport> = metrics
        .records()
        .iter()
        .map(|r| CycleReport {
            cycle: r.cycle,
            train_s: r.phases.train_s,
            comm_s: r.phases.comm_s,
            comm_bytes: r.comm_bytes,
            wire_bytes: r.phases.wire_bytes,
            retries: r.phases.retries,
            missed: r.phases.missed,
            aggregated_updates: r.phases.aggregated_updates,
            train_flops: r.phases.train_flops,
            eval_flops: r.phases.eval_flops,
        })
        .collect();
    let total_train_s: f64 = cycles.iter().map(|c| c.train_s).sum();
    let total_comm_s: f64 = cycles.iter().map(|c| c.comm_s).sum();
    let span = total_train_s + total_comm_s;
    let device_train_s: Vec<f64> = (0..CAPABLE + STRAGGLERS)
        .map(|i| env.client(i).expect("client").cycle_time().as_secs_f64())
        .collect();
    let slowest_straggler = device_train_s[CAPABLE..]
        .iter()
        .fold(0.0f64, |a, &b| a.max(b));
    let mean_cycle_span = metrics.total_time().as_secs_f64() / CYCLES as f64;
    RunReport {
        strategy: metrics.strategy().to_string(),
        total_sim_time_s: metrics.total_time().as_secs_f64(),
        total_train_s,
        total_comm_s,
        train_share: if span > 0.0 {
            total_train_s / span
        } else {
            0.0
        },
        device_train_s,
        straggler_train_share: if mean_cycle_span > 0.0 {
            slowest_straggler / mean_cycle_span
        } else {
            0.0
        },
        total_wire_bytes: cycles.iter().map(|c| c.wire_bytes).sum(),
        cycles,
    }
}

fn main() {
    // Zero the process-global host accumulators so the per-cycle flop
    // counts below are attributable to this run alone.
    let _host = helios_nn::HostMetricsScope::enter();
    let strategies: Vec<Box<dyn Strategy>> = vec![
        Box::new(SyncFedAvg::new()),
        Box::new(RandomPartial::new(vec![None, None, Some(0.4), Some(0.4)])),
        Box::new(AsyncFl::new(vec![2, 3])),
        Box::new(Afo::new(vec![2, 3])),
        Box::new(HeliosStrategy::new(HeliosConfig::default())),
    ];

    println!(
        "Per-phase round breakdown — {CAPABLE} capable + {STRAGGLERS} stragglers, {CYCLES} cycles"
    );
    let mut runs = Vec::new();
    for mut s in strategies {
        let run = run_report(s.as_mut());
        println!(
            "{:<16} sim_time {:>8.2}s  train {:>8.2}s  comm {:>7.2}s  share {:>5.3}  \
             straggler-share {:>5.3}  wire {:>9} B",
            run.strategy,
            run.total_sim_time_s,
            run.total_train_s,
            run.total_comm_s,
            run.train_share,
            run.straggler_train_share,
            run.total_wire_bytes,
        );
        for c in &run.cycles {
            println!(
                "  cycle {}  train {:>8.2}s  comm {:>7.2}s  wire {:>9} B  retries {:>2}  missed {}  agg {}",
                c.cycle, c.train_s, c.comm_s, c.wire_bytes, c.retries, c.missed, c.aggregated_updates,
            );
        }
        runs.push(run);
    }

    let report = EngineBenchReport {
        seed: SEED,
        cycles: CYCLES,
        capable: CAPABLE,
        stragglers: STRAGGLERS,
        runs,
    };
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("results dir");
    let path = dir.join("BENCH_engine.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&report).expect("serialize"),
    )
    .expect("write report");
    println!("\nwrote {}", path.display());

    // Self-check against the artifact we just wrote: soft-trained
    // stragglers must shrink both the absolute train-phase time and the
    // train phase's share of the round relative to synchronous FedAvg.
    let parsed: EngineBenchReport =
        serde_json::from_str(&std::fs::read_to_string(&path).expect("read back"))
            .expect("BENCH_engine.json must parse");
    let by_name = |n: &str| {
        parsed
            .runs
            .iter()
            .find(|r| r.strategy == n)
            .unwrap_or_else(|| panic!("{n} run present"))
    };
    let sync = by_name("sync_fedavg");
    let helios = by_name("helios");
    let time_ok = helios.total_train_s < sync.total_train_s;
    let share_ok = helios.straggler_train_share < sync.straggler_train_share;
    println!(
        "check: helios train {:.2}s < sync {:.2}s — {}",
        helios.total_train_s,
        sync.total_train_s,
        if time_ok { "ok" } else { "FAIL" }
    );
    println!(
        "check: helios straggler train share {:.3} < sync {:.3} — {}",
        helios.straggler_train_share,
        sync.straggler_train_share,
        if share_ok { "ok" } else { "FAIL" }
    );
    if !(time_ok && share_ok) {
        eprintln!("train-phase self-check failed");
        std::process::exit(1);
    }
}
