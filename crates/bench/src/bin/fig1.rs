//! **Fig 1** — the straggler issue in original (synchronized) FL.
//!
//! The paper's motivating figure: a 3-device fleet (Jetson Nano,
//! Raspberry Pi, DeepLens) where the synchronous training cycle inflates
//! from 2.3 h (capable devices only) to 7.7 h once the straggler joins,
//! leaving the fast devices idle most of each cycle. We reproduce the
//! per-device cycle times, the idle fractions, and the cycle-inflation
//! ratio (paper: ≈3.3×).

use helios_data::{partition, Dataset, SyntheticVision};
use helios_device::presets;
use helios_fl::{FlConfig, FlEnv};
use helios_nn::models::ModelKind;
use helios_tensor::TensorRng;

fn main() {
    // Fig 1's fleet: Nano (capable) + Raspberry Pi + DeepLens(CPU), one
    // shared AlexNet-like training job.
    let fleet = vec![
        presets::jetson_nano(),
        presets::raspberry_pi(),
        presets::deeplens_cpu(),
    ];
    let mut rng = TensorRng::seed_from(42);
    let (train, test) = SyntheticVision::cifar10_like()
        .generate(120 * fleet.len(), 60, &mut rng)
        .expect("dataset generation succeeds");
    let shards: Vec<Dataset> = partition::iid(train.len(), fleet.len(), &mut rng)
        .into_iter()
        .map(|idx| train.subset(&idx).expect("indices in range"))
        .collect();
    let env = FlEnv::new(ModelKind::AlexNet, fleet, shards, test, FlConfig::default())
        .expect("environment builds");

    let times: Vec<f64> = (0..env.num_clients())
        .map(|i| {
            env.client(i)
                .expect("client exists")
                .cycle_time()
                .as_secs_f64()
        })
        .collect();
    let slowest = times.iter().copied().fold(0.0, f64::max);
    let capable_cycle = times[0];

    println!("Fig 1: the straggler issue in original FL (AlexNet-like workload)");
    println!(
        "{:<18} {:>12} {:>12} {:>10}",
        "device", "cycle time", "idle/cycle", "idle %"
    );
    for (i, &t) in times.iter().enumerate() {
        let name = env
            .client(i)
            .expect("client exists")
            .profile()
            .name()
            .to_string();
        let idle = slowest - t;
        println!(
            "{:<18} {:>12} {:>12} {:>9.0}%",
            name,
            helios_device::SimTime::from_secs(t).to_string(),
            helios_device::SimTime::from_secs(idle).to_string(),
            100.0 * idle / slowest,
        );
    }
    println!(
        "\nsync cycle without stragglers : {}",
        helios_device::SimTime::from_secs(capable_cycle)
    );
    println!(
        "sync cycle with stragglers    : {}",
        helios_device::SimTime::from_secs(slowest)
    );
    println!(
        "cycle inflation               : {:.2}x   (paper: 7.7h / 2.3h = 3.35x)",
        slowest / capable_cycle
    );
}
