//! **BENCH_fleet** — fleet-scale scaling curve of the lazy device
//! population.
//!
//! Runs the same 3-cycle synchronous workload (500 uniformly sampled
//! participants per round, eviction on) against enrolled populations of
//! 1k, 10k, and 100k devices described by a [`helios_fl::FleetSpec`] —
//! profiles, shards, and seeds are pure functions of
//! `(seed, device_index)`, so unsampled devices are never instantiated.
//! Writes `results/BENCH_fleet.json`, then re-parses its own artifact
//! and asserts the fleet contract: every cycle aggregates exactly the
//! cohort, live client state stays O(cohort), peak memory is near-flat
//! across a 100× population sweep, the 100k run finishes in seconds,
//! and a repeated 1k run replays bitwise. Exits nonzero otherwise.

use helios_bench::results_dir;
use helios_data::{ShardSynthesizer, SyntheticVision};
use helios_device::ProfileSynthesizer;
use helios_fl::{FlConfig, FlEnv, FleetSpec, RunMetrics, SamplerConfig, Strategy, SyncFedAvg};
use helios_nn::models::ModelKind;
use serde::{Deserialize, Serialize};
use std::time::Instant;

const SEED: u64 = 77;
const CYCLES: usize = 3;
const COHORT: usize = 500;
const POPULATIONS: [usize; 3] = [1_000, 10_000, 100_000];
/// Samples held by each device's synthesized shard.
const SHARD_SAMPLES: usize = 8;
/// Held-out test-set size used for the per-cycle global evaluation.
const TEST_SAMPLES: usize = 64;

/// Peak-memory headroom allowed across the 100× population sweep, in
/// kB. The population-dependent state is one recorded seed (8 B) per
/// device — ~800 kB at 100k — so 64 MiB comfortably covers allocator
/// noise while still failing loudly if anything O(population) per
/// device sneaks back in.
const MAX_HWM_GROWTH_KB: u64 = 64 * 1024;
/// Wall-clock ceiling for the 100k-device run ("seconds-scale", with
/// generous slack for loaded CI hosts).
const MAX_WALL_S: f64 = 120.0;

#[derive(Debug, Serialize, Deserialize)]
struct ScalePoint {
    population: usize,
    /// Host wall-clock seconds for the full 3-cycle run (env
    /// construction included).
    wall_s: f64,
    /// `VmHWM` (peak resident set, kB) observed *after* this run.
    /// Populations run in ascending order, so the 1k→100k delta bounds
    /// the population-dependent footprint.
    peak_rss_kb: u64,
    /// Clients still instantiated when the run ended; eviction keeps
    /// this at O(cohort) regardless of population.
    materialized_clients: usize,
    /// Updates aggregated per cycle — must equal the cohort size.
    participants_per_cycle: Vec<usize>,
    /// Final-cycle global-model test accuracy (sanity only).
    final_accuracy: f64,
}

#[derive(Debug, Serialize, Deserialize)]
struct FleetBenchReport {
    seed: u64,
    cycles: usize,
    cohort: usize,
    /// Whether two identical 1k runs produced equal [`RunMetrics`].
    determinism_ok: bool,
    points: Vec<ScalePoint>,
}

/// Reads the process peak resident set (`VmHWM`) in kB from
/// `/proc/self/status`. Returns 0 on platforms without procfs, which
/// disarms the memory self-check rather than failing it spuriously.
fn vm_hwm_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

/// Builds the lazy environment: `population` enrolled devices, none
/// instantiated, uniform 500-device cohorts, eviction on.
fn make_env(population: usize) -> FlEnv {
    let spec = FleetSpec::new(
        population,
        ProfileSynthesizer::new(SEED, 0.3),
        ShardSynthesizer::new(SyntheticVision::mnist_like(), SHARD_SAMPLES, SEED)
            .expect("shard synthesizer"),
    )
    .evict_unsampled();
    let test = spec.shards.test_set(TEST_SAMPLES).expect("test set");
    FlEnv::new_lazy(
        ModelKind::LeNet,
        spec,
        test,
        FlConfig {
            seed: SEED,
            sampling: SamplerConfig::uniform(COHORT),
            ..FlConfig::default()
        },
    )
    .expect("lazy env")
}

fn run_once(population: usize) -> (RunMetrics, usize) {
    let mut env = make_env(population);
    let metrics = SyncFedAvg::new()
        .run(&mut env, CYCLES)
        .expect("sync run over sampled cohorts");
    (metrics, env.materialized_clients())
}

fn scale_point(population: usize) -> ScalePoint {
    let start = Instant::now();
    let (metrics, materialized) = run_once(population);
    let wall_s = start.elapsed().as_secs_f64();
    let records = metrics.records();
    ScalePoint {
        population,
        wall_s,
        peak_rss_kb: vm_hwm_kb(),
        materialized_clients: materialized,
        participants_per_cycle: records.iter().map(|r| r.participants).collect(),
        final_accuracy: records.last().map_or(0.0, |r| r.test_accuracy),
    }
}

fn main() {
    println!(
        "Fleet scaling — {COHORT} sampled/round, {CYCLES} cycles, populations {POPULATIONS:?}"
    );

    // Bitwise replay first, while the high-water mark is still low.
    let (a, _) = run_once(POPULATIONS[0]);
    let (b, _) = run_once(POPULATIONS[0]);
    let determinism_ok = a == b;
    println!(
        "determinism: two {}-device runs {}",
        POPULATIONS[0],
        if determinism_ok {
            "replay bitwise — ok"
        } else {
            "DIVERGED"
        }
    );

    let mut points = Vec::new();
    for population in POPULATIONS {
        let p = scale_point(population);
        println!(
            "population {:>7}  wall {:>6.2}s  peak rss {:>8} kB  materialized {:>4}  acc {:.3}",
            p.population, p.wall_s, p.peak_rss_kb, p.materialized_clients, p.final_accuracy,
        );
        points.push(p);
    }

    let report = FleetBenchReport {
        seed: SEED,
        cycles: CYCLES,
        cohort: COHORT,
        determinism_ok,
        points,
    };
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("results dir");
    let path = dir.join("BENCH_fleet.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&report).expect("serialize"),
    )
    .expect("write report");
    println!("\nwrote {}", path.display());

    // Self-check against the artifact we just wrote.
    let parsed: FleetBenchReport =
        serde_json::from_str(&std::fs::read_to_string(&path).expect("read back"))
            .expect("BENCH_fleet.json must parse");
    let mut ok = true;
    let mut check = |name: &str, pass: bool| {
        println!("check: {name} — {}", if pass { "ok" } else { "FAIL" });
        ok &= pass;
    };
    check("1k-device run replays bitwise", parsed.determinism_ok);
    for p in &parsed.points {
        check(
            &format!(
                "population {}: every cycle aggregates the full {}-device cohort",
                p.population, parsed.cohort
            ),
            p.participants_per_cycle.len() == parsed.cycles
                && p.participants_per_cycle.iter().all(|&n| n == parsed.cohort),
        );
        check(
            &format!(
                "population {}: live clients capped at the cohort ({} materialized)",
                p.population, p.materialized_clients
            ),
            p.materialized_clients <= parsed.cohort,
        );
    }
    let first = &parsed.points[0];
    let last = &parsed.points[parsed.points.len() - 1];
    if first.peak_rss_kb > 0 {
        let growth = last.peak_rss_kb.saturating_sub(first.peak_rss_kb);
        check(
            &format!(
                "peak memory near-flat across {}x population sweep (+{growth} kB <= {MAX_HWM_GROWTH_KB} kB)",
                last.population / first.population,
            ),
            growth <= MAX_HWM_GROWTH_KB,
        );
    } else {
        println!("check: peak memory — skipped (no /proc/self/status)");
    }
    check(
        &format!(
            "{}-device run finishes in seconds ({:.2}s <= {MAX_WALL_S}s)",
            last.population, last.wall_s
        ),
        last.wall_s <= MAX_WALL_S,
    );
    if !ok {
        eprintln!("fleet scaling self-check failed");
        std::process::exit(1);
    }
}
