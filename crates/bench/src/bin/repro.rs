//! One-shot reproduction runner: executes every table/figure binary's
//! logic in sequence (Table I, Figs 1, 2, 5, 6, 7) at reduced cycle
//! counts suitable for a smoke pass.
//!
//! For the full-length runs behind `EXPERIMENTS.md`, invoke the
//! individual binaries (`table1`, `fig1`, `fig2`, `fig5`, `fig6`,
//! `fig7`, `ablation_ps`).
//!
//! Usage: `repro [cycles]` (default 12).

use helios_bench::{format_summary, run_strategies, ExperimentSpec, StrategySet, Workload};
use std::process::Command;

fn run_binary(name: &str) {
    println!("━━━ {name} ━━━");
    // The sibling binaries live next to this one.
    let me = std::env::current_exe().expect("own path");
    let bin = me.with_file_name(name);
    match Command::new(&bin).status() {
        Ok(s) if s.success() => {}
        Ok(s) => eprintln!("{name} exited with {s}"),
        Err(e) => eprintln!("could not launch {name} ({e}); run `cargo build --release` first"),
    }
    println!();
}

fn main() {
    let cycles: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(12);

    run_binary("table1");
    run_binary("fig1");

    println!("━━━ fig5 (smoke, {cycles} cycles, MNIST-like) ━━━");
    for devices in [4usize, 6] {
        let spec = ExperimentSpec::paper_fleet(Workload::LenetMnist, devices, false, 42);
        let metrics = run_strategies(&spec, StrategySet::Paper, cycles);
        println!("{devices} devices:");
        println!("{}", format_summary(&metrics, 0.6));
    }

    println!("━━━ fig7 (smoke, {cycles} cycles, Non-IID MNIST-like) ━━━");
    let spec = ExperimentSpec::paper_fleet(Workload::LenetMnist, 4, true, 42);
    let metrics = run_strategies(&spec, StrategySet::Paper, cycles);
    println!("{}", format_summary(&metrics, 0.5));

    println!("━━━ fig6 (smoke, {cycles} cycles) ━━━");
    let spec = ExperimentSpec::paper_fleet(Workload::AlexnetCifar10, 4, true, 42);
    let metrics = run_strategies(&spec, StrategySet::AggregationAblation, cycles);
    println!("{}", format_summary(&metrics, 0.5));

    println!("smoke reproduction complete; see EXPERIMENTS.md for full runs.");
}
