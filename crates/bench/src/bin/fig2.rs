//! **Fig 2** — asynchronous FL performance evaluation.
//!
//! Two collaborating devices under three settings: fully synchronous
//! aggregation, and asynchronous aggregation where the straggler's update
//! joins only every 2 or every 3 epochs. The paper's finding: synchronous
//! achieves the best converged accuracy, and stretching the straggler's
//! aggregation period from 2 to 3 degrades both accuracy and speed.
//!
//! The devices hold label-disjoint (Non-IID) shards — the regime §II.A
//! motivates, where the straggler's information is unique, so skipping or
//! staling its updates visibly costs accuracy.

use helios_bench::{format_curves, results_dir, write_csvs, ExperimentSpec, Workload};
use helios_fl::{AsyncFl, Strategy, SyncFedAvg};

fn main() {
    let cycles = 30;
    let seeds = [11u64, 12, 13];
    println!("Fig 2: sync vs async aggregation every 2 / every 3 cycles (2 devices)\n");
    let mut tails = [0.0f64; 3];
    for &seed in &seeds {
        let spec = ExperimentSpec::paper_fleet(Workload::LenetMnist, 2, true, seed);
        let mut metrics = Vec::new();
        {
            let mut env = spec.build_env();
            metrics.push(SyncFedAvg::new().run(&mut env, cycles).expect("sync runs"));
        }
        for period in [2usize, 3] {
            let mut env = spec.build_env();
            let mut s = AsyncFl::with_fixed_period(vec![1], period);
            let mut m = s.run(&mut env, cycles).expect("async runs");
            // Distinguish the two settings in the output.
            let renamed = {
                let mut r = helios_fl::RunMetrics::new(format!("async_every_{period}"));
                for rec in m.records() {
                    r.push(rec.clone());
                }
                m = r;
                m
            };
            metrics.push(renamed);
        }
        println!("seed {seed}:");
        println!("{}", format_curves(&metrics, 3));
        for (i, m) in metrics.iter().enumerate() {
            tails[i] += m.tail_accuracy(5) / seeds.len() as f64;
        }
        if seed == seeds[0] {
            write_csvs(&results_dir().join("fig2"), "fig2", &metrics)
                .expect("results directory is writable");
        }
    }
    println!("mean converged accuracy over {} seeds:", seeds.len());
    println!("  setting 1 (sync)          : {:.4}", tails[0]);
    println!("  setting 2 (async every 2) : {:.4}", tails[1]);
    println!("  setting 3 (async every 3) : {:.4}", tails[2]);
    println!("\npaper shape: sync ≥ async-2 ≥ async-3.");
}
