//! **Table I** — four stragglers with heterogeneous resources.
//!
//! Prints each straggler preset's compute bandwidth, memory budget, and
//! the cost-model training-cycle time for the AlexNet/CIFAR-10 workload,
//! next to the paper's reported values. The reproduction target is the
//! *shape*: the time-cost column must fall as compute bandwidth falls,
//! with ratios close to the paper's 1 : 1.16 : 1.32 : 1.65.

use helios_bench::{ExperimentSpec, Workload};
use helios_device::{presets, CostModel};

fn main() {
    let spec = ExperimentSpec::paper_fleet(Workload::AlexnetCifar10, 4, false, 42);
    let env = spec.build_env();
    // Reference workload: one full-model local training cycle of the
    // AlexNet-like model (any client's model; profiles differ, not models).
    let workload = env.client(0).expect("client 0 exists").cycle_workload();

    let paper_gflops = [7.0, 6.0, 5.5, 4.5];
    let paper_mem_mb = [252.0, 150.0, 100.0, 110.0];
    let paper_time_min = [20.6, 23.8, 27.2, 34.0];

    println!("Table I: 4 stragglers with heterogeneous resources (AlexNet / CIFAR-10-like)");
    println!(
        "{:<18} {:>12} {:>12} {:>12} {:>12} {:>14} {:>14}",
        "device", "comp(GFLOPS)", "paper", "mem(MB)", "paper", "time-cost", "paper(min)"
    );
    let devices = presets::table1_stragglers();
    let mut times = Vec::new();
    for (i, d) in devices.iter().enumerate() {
        let te = CostModel::time_for(d, &workload);
        times.push(te.as_secs_f64());
        println!(
            "{:<18} {:>12.1} {:>12.1} {:>12.0} {:>12.0} {:>14} {:>14.1}",
            d.name(),
            d.compute_flops_per_sec() / 1e9,
            paper_gflops[i],
            d.memory_capacity_bytes() / (1 << 20) as f64,
            paper_mem_mb[i],
            te.to_string(),
            paper_time_min[i],
        );
    }
    println!("\ntime-cost ratios vs the strongest straggler (shape check):");
    println!("{:<18} {:>10} {:>10}", "device", "measured", "paper");
    for (i, d) in devices.iter().enumerate() {
        println!(
            "{:<18} {:>9.2}x {:>9.2}x",
            d.name(),
            times[i] / times[0],
            paper_time_min[i] / paper_time_min[0],
        );
    }
    let capable = presets::jetson_nano();
    let t_cap = CostModel::time_for(&capable, &workload);
    println!(
        "\ncapable reference {}: {} per cycle ({:.1}x–{:.1}x straggler slowdown)",
        capable.name(),
        t_cap,
        times[0] / t_cap.as_secs_f64(),
        times[3] / t_cap.as_secs_f64(),
    );
}
