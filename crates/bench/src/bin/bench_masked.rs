//! **BENCH_masked** — packed sub-model execution: does a masked model
//! actually cost less?
//!
//! Trains LeNet at keep ratios 1.0 / 0.5 / 0.25 (leading-units mask on
//! every maskable layer) and records the train-phase kernel flops and
//! wall time under both execution strategies: packed (gather → compact
//! kernels → scatter) and the legacy zeroing path (full-width kernels
//! over mostly-zero operands). Writes `results/BENCH_masked.json`, then
//! re-parses its own output and asserts the tentpole effect — packed
//! flops shrink roughly with the active parameter fraction, and the
//! keep=0.25 sub-model costs at most 40% of the full model — exiting
//! nonzero otherwise.

use helios_bench::results_dir;
use helios_nn::{models, set_packed_execution, CrossEntropyLoss, ModelMask, Network, Sgd};
use helios_tensor::{kernel_counters, uniform_init, Tensor, TensorRng};
use serde::{Deserialize, Serialize};
use std::time::Instant;

const SEED: u64 = 42;
const BATCH: usize = 32;
const STEPS: usize = 8;
const KEEPS: [f64; 3] = [1.0, 0.5, 0.25];

#[derive(Debug, Serialize, Deserialize)]
struct KeepReport {
    keep: f64,
    /// Fraction of model parameters live under the mask.
    active_param_fraction: f64,
    /// Train-phase kernel flops with packed execution.
    packed_flops: u64,
    /// Same steps through the legacy zeroing path.
    zeroing_flops: u64,
    packed_wall_s: f64,
    zeroing_wall_s: f64,
    /// `packed_flops` relative to the unmasked model's.
    packed_flops_ratio: f64,
}

#[derive(Debug, Serialize, Deserialize)]
struct MaskedBenchReport {
    seed: u64,
    batch: usize,
    steps: usize,
    runs: Vec<KeepReport>,
}

/// First-⌈keep·n⌉-units-active mask over every maskable layer.
fn leading_units_mask(net: &mut Network, keep: f64) -> ModelMask {
    let units = net.maskable_units();
    let mut mask = ModelMask::all_active(&units);
    for (i, &n) in units.0.iter().enumerate() {
        let k = ((keep * n as f64).ceil() as usize).clamp(1, n);
        mask.set_layer(i, Some((0..n).map(|j| j < k).collect()));
    }
    mask
}

/// Runs [`STEPS`] SGD steps and returns `(kernel flops, wall seconds)`.
fn train_cost(net: &mut Network, x: &Tensor, labels: &[usize]) -> (u64, f64) {
    let loss = CrossEntropyLoss::new();
    let mut opt = Sgd::with_momentum(0.05, 0.9);
    let before = kernel_counters();
    let start = Instant::now();
    for _ in 0..STEPS {
        net.zero_grad();
        let logits = net.forward(x).expect("forward");
        let (_, grad) = loss.forward_backward(&logits, labels).expect("loss");
        net.backward(&grad).expect("backward");
        opt.step(net).expect("step");
    }
    (
        kernel_counters().since(&before).flops,
        start.elapsed().as_secs_f64(),
    )
}

fn main() {
    // Zero the process-global host accumulators so the kernel-flop
    // deltas below start from a clean slate.
    let _host = helios_nn::HostMetricsScope::enter();
    let mut rng = TensorRng::seed_from(SEED);
    let template = models::lenet(10, &mut rng);
    let x = uniform_init(&[BATCH, 1, 16, 16], -1.0, 1.0, &mut rng);
    let labels: Vec<usize> = (0..BATCH).map(|i| i % 10).collect();

    println!("Packed sub-model train cost — LeNet, batch {BATCH}, {STEPS} steps");
    let mut runs = Vec::new();
    for keep in KEEPS {
        let mut net = template.clone();
        let mask = leading_units_mask(&mut net, keep);
        let live = net.layout().param_mask(&mask);
        let active_param_fraction =
            live.iter().filter(|&&b| b).count() as f64 / live.len().max(1) as f64;

        let mut packed_net = net.clone();
        packed_net.set_masks(&mask).expect("masks");
        set_packed_execution(true);
        let (packed_flops, packed_wall_s) = train_cost(&mut packed_net, &x, &labels);

        let mut zeroing_net = net;
        zeroing_net.set_masks(&mask).expect("masks");
        set_packed_execution(false);
        let (zeroing_flops, zeroing_wall_s) = train_cost(&mut zeroing_net, &x, &labels);
        set_packed_execution(true);

        println!(
            "keep {keep:>4}  params {:>5.1}%  packed {packed_flops:>12} flops {packed_wall_s:>7.3}s  \
             zeroing {zeroing_flops:>12} flops {zeroing_wall_s:>7.3}s",
            100.0 * active_param_fraction,
        );
        runs.push(KeepReport {
            keep,
            active_param_fraction,
            packed_flops,
            zeroing_flops,
            packed_wall_s,
            zeroing_wall_s,
            packed_flops_ratio: 0.0, // filled against the keep=1.0 baseline below
        });
    }
    let full_flops = runs[0].packed_flops;
    for r in &mut runs {
        r.packed_flops_ratio = r.packed_flops as f64 / full_flops.max(1) as f64;
    }

    let report = MaskedBenchReport {
        seed: SEED,
        batch: BATCH,
        steps: STEPS,
        runs,
    };
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("results dir");
    let path = dir.join("BENCH_masked.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&report).expect("serialize"),
    )
    .expect("write report");
    println!("\nwrote {}", path.display());

    // Self-check against the artifact we just wrote.
    let parsed: MaskedBenchReport =
        serde_json::from_str(&std::fs::read_to_string(&path).expect("read back"))
            .expect("BENCH_masked.json must parse");
    let by_keep = |k: f64| {
        parsed
            .runs
            .iter()
            .find(|r| (r.keep - k).abs() < 1e-9)
            .unwrap_or_else(|| panic!("keep={k} run present"))
    };
    let full = by_keep(1.0);
    let half = by_keep(0.5);
    let quarter = by_keep(0.25);

    let mut ok = true;
    let mut check = |what: &str, cond: bool| {
        println!("check: {what} — {}", if cond { "ok" } else { "FAIL" });
        ok &= cond;
    };
    // Flops must be strictly monotone in the keep ratio.
    check(
        "packed flops monotone in keep",
        quarter.packed_flops < half.packed_flops && half.packed_flops < full.packed_flops,
    );
    // The acceptance bar: a quarter-volume sub-model costs well under
    // half of the full model.
    check(
        &format!(
            "keep=0.25 flops ratio {:.3} <= 0.40",
            quarter.packed_flops_ratio
        ),
        quarter.packed_flops_ratio <= 0.40,
    );
    // Packed flops scale with the live parameter fraction: at least the
    // masked parameters' kernels disappear (conv layers masked on both
    // channel axes save even more — compute shrinks quadratically in
    // keep while the fraction counts each parameter once), so the ratio
    // must not exceed the fraction, with a sanity floor against a
    // miscounting kernel.
    for r in [half, quarter] {
        check(
            &format!(
                "keep={} flops ratio {:.3} within [{:.3}, {:.3}]",
                r.keep,
                r.packed_flops_ratio,
                0.25 * r.active_param_fraction,
                r.active_param_fraction + 0.05
            ),
            r.packed_flops_ratio >= 0.25 * r.active_param_fraction
                && r.packed_flops_ratio <= r.active_param_fraction + 0.05,
        );
    }
    // The zeroing path never gets cheaper: identical math, full shapes.
    check(
        "zeroing flops are mask-independent",
        half.zeroing_flops == full.zeroing_flops && quarter.zeroing_flops == full.zeroing_flops,
    );
    if !ok {
        eprintln!("packed-execution self-check failed");
        std::process::exit(1);
    }
}
