//! **Extension ablation** — Non-IID severity sweep (beyond the paper).
//!
//! The paper evaluates one Non-IID construction (label shards, §VII.D).
//! This ablation sweeps data heterogeneity from IID through Dirichlet(α)
//! skews to the pathological shard split, comparing Syn. FL, Asyn. FL,
//! and Helios. Expected shape: the sync−async gap widens as skew grows
//! (stale straggler updates lose unique classes), and Helios tracks sync
//! far closer than async at every severity.

use helios_bench::{ExperimentSpec, Workload};
use helios_core::{HeliosConfig, HeliosStrategy};
use helios_data::{partition, Dataset};
use helios_device::presets;
use helios_fl::{AsyncFl, FlConfig, FlEnv, Strategy, SyncFedAvg};
use helios_tensor::TensorRng;

#[derive(Clone, Copy)]
enum Skew {
    Iid,
    Dirichlet(f64),
    LabelShards,
}

impl Skew {
    fn label(self) -> String {
        match self {
            Skew::Iid => "iid".into(),
            Skew::Dirichlet(a) => format!("dirichlet({a})"),
            Skew::LabelShards => "label-shards".into(),
        }
    }
}

fn build_env(skew: Skew, seed: u64) -> FlEnv {
    let spec = ExperimentSpec::paper_fleet(Workload::LenetMnist, 4, false, seed);
    let clients = spec.devices();
    let mut rng = TensorRng::seed_from(seed);
    let (train, test) = spec
        .workload
        .dataset_spec()
        .generate(spec.per_client * clients, spec.test_samples, &mut rng)
        .expect("generation succeeds");
    let idx = match skew {
        Skew::Iid => partition::iid(train.len(), clients, &mut rng),
        Skew::Dirichlet(a) => {
            partition::dirichlet(train.labels(), train.num_classes(), clients, a, &mut rng)
                .expect("valid alpha")
        }
        Skew::LabelShards => {
            partition::label_shards(train.labels(), clients, 2, &mut rng).expect("fits")
        }
    };
    let shards: Vec<Dataset> = idx
        .into_iter()
        .map(|i| train.subset(&i).expect("in range"))
        .collect();
    FlEnv::new(
        spec.workload.model(),
        presets::mixed_fleet(spec.capable, spec.stragglers),
        shards,
        test,
        FlConfig {
            seed,
            learning_rate: 0.04,
            ..FlConfig::default()
        },
    )
    .expect("env builds")
}

fn main() {
    let cycles = 25;
    let seeds = [41u64, 42, 43];
    println!("Non-IID severity sweep (LeNet/MNIST-like, 4 devices / 2 stragglers)\n");
    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>16}",
        "skew", "sync", "async", "helios", "helios−async"
    );
    for skew in [
        Skew::Iid,
        Skew::Dirichlet(10.0),
        Skew::Dirichlet(1.0),
        Skew::Dirichlet(0.3),
        Skew::LabelShards,
    ] {
        let mut acc = [0.0f64; 3];
        for &seed in &seeds {
            let mut env = build_env(skew, seed);
            acc[0] += SyncFedAvg::new()
                .run(&mut env, cycles)
                .expect("sync")
                .tail_accuracy(5);
            let mut env = build_env(skew, seed);
            acc[1] += AsyncFl::new(vec![2, 3])
                .run(&mut env, cycles)
                .expect("async")
                .tail_accuracy(5);
            let mut env = build_env(skew, seed);
            acc[2] += HeliosStrategy::new(HeliosConfig::default())
                .run(&mut env, cycles)
                .expect("helios")
                .tail_accuracy(5);
        }
        let n = seeds.len() as f64;
        println!(
            "{:<16} {:>10.4} {:>10.4} {:>10.4} {:>+16.4}",
            skew.label(),
            acc[0] / n,
            acc[1] / n,
            acc[2] / n,
            (acc[2] - acc[1]) / n
        );
    }
}
