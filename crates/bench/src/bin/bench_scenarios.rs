//! **BENCH_scenarios** — scenario-engine dynamics under the Helios
//! protocol.
//!
//! Two experiments over the same synthesized fleet:
//!
//! 1. **Throttle → skip pressure.** Runs Helios with and without a
//!    battery/thermal throttle ramp on the fleet. Throttled stragglers
//!    are classified at a smaller soft-training volume, so more model
//!    units sit idle per cycle and the server-side skip counters `C_s`
//!    (§VI.A) accumulate faster.
//! 2. **Churn resilience.** Runs Helios and synchronous FedAvg through
//!    an identical join/leave/return + throttle + label-drift timeline
//!    and compares simulated round time. The Helios leg records its
//!    trace to `results/trace_scenario.jsonl` (validated by
//!    `trace_report --validate` in CI).
//!
//! Writes `results/BENCH_scenarios.json`, re-parses it, and self-checks:
//! throttling strictly increases the accumulated skip mass, the churn
//! timeline never starves a cycle (and the join lands), Helios finishes
//! the churned workload faster than synchronous FedAvg, and the trace
//! carries every scheduled scenario event kind. Exits nonzero
//! otherwise.

use helios_bench::results_dir;
use helios_core::{HeliosConfig, HeliosStrategy};
use helios_data::{ShardSynthesizer, SyntheticVision};
use helios_device::ProfileSynthesizer;
use helios_fl::{
    ChurnAction, ChurnEvent, DriftEvent, DriftKind, FlConfig, FlEnv, FleetSpec, ScenarioConfig,
    Strategy, SyncFedAvg, ThrottleRule,
};
use helios_nn::models::ModelKind;
use serde::{Deserialize, Serialize};
use std::path::Path;

const SEED: u64 = 61;
const CYCLES: usize = 8;
/// Initial enrolled population (the churn timeline grows it by one).
const POPULATION: usize = 6;
/// Samples per synthesized device shard.
const SHARD_SAMPLES: usize = 8;
/// Held-out test-set size.
const TEST_SAMPLES: usize = 32;

#[derive(Debug, Serialize, Deserialize)]
struct SkipPressure {
    /// Sum of all per-unit skip counters across every fitted trainer at
    /// the end of the run.
    skip_mass: u64,
    /// Largest single per-unit skip counter observed.
    max_skip: u32,
    /// Devices Helios classified as stragglers.
    stragglers: usize,
}

#[derive(Debug, Serialize, Deserialize)]
struct ChurnComparison {
    helios_total_time: f64,
    sync_total_time: f64,
    helios_participants: Vec<usize>,
    sync_participants: Vec<usize>,
    /// Enrolled devices once the timeline has played out.
    final_population: usize,
    /// Distinct `ScenarioEvent` kinds found in the recorded trace.
    trace_event_kinds: Vec<String>,
}

#[derive(Debug, Serialize, Deserialize)]
struct ScenarioBenchReport {
    seed: u64,
    cycles: usize,
    population: usize,
    baseline: SkipPressure,
    throttled: SkipPressure,
    churn: ChurnComparison,
}

/// The battery/thermal ramp used by both experiments: every device
/// decays from cycle 0, so classification already sees the slowdown.
fn throttle_ramp() -> ThrottleRule {
    ThrottleRule {
        start_cycle: 0,
        device: None,
        compute_decay: 0.15,
        bandwidth_decay: 0.0,
        floor: 0.35,
    }
}

/// Join one newcomer mid-run, drop a device for two cycles.
fn churn_timeline() -> Vec<ChurnEvent> {
    vec![
        ChurnEvent {
            cycle: 2,
            action: ChurnAction::Join,
            device: 0,
            count: 1,
        },
        ChurnEvent {
            cycle: 3,
            action: ChurnAction::Leave,
            device: 1,
            count: 1,
        },
        ChurnEvent {
            cycle: 5,
            action: ChurnAction::Return,
            device: 1,
            count: 1,
        },
    ]
}

fn make_env(scenario: ScenarioConfig) -> FlEnv {
    let spec = FleetSpec::new(
        POPULATION,
        ProfileSynthesizer::new(SEED, 0.5),
        ShardSynthesizer::new(SyntheticVision::mnist_like(), SHARD_SAMPLES, SEED)
            .expect("shard synthesizer"),
    );
    let test = spec.shards.test_set(TEST_SAMPLES).expect("test set");
    FlEnv::new_lazy(
        ModelKind::LeNet,
        spec,
        test,
        FlConfig {
            seed: SEED,
            scenario,
            ..FlConfig::default()
        },
    )
    .expect("lazy env")
}

/// Runs Helios and reads back the accumulated skip-counter state.
fn skip_pressure(scenario: ScenarioConfig) -> SkipPressure {
    let mut env = make_env(scenario);
    let mut helios = HeliosStrategy::new(HeliosConfig::default());
    helios.run(&mut env, CYCLES).expect("helios run");
    let mut skip_mass = 0u64;
    let mut max_skip = 0u32;
    for &id in helios.stragglers() {
        if let Some(trainer) = helios.trainer(id) {
            for layer in trainer.skip_cycles() {
                for &c in layer {
                    skip_mass += u64::from(c);
                    max_skip = max_skip.max(c);
                }
            }
        }
    }
    SkipPressure {
        skip_mass,
        max_skip,
        stragglers: helios.stragglers().len(),
    }
}

fn churn_comparison(dir: &Path) -> ChurnComparison {
    let scenario = ScenarioConfig {
        churn: churn_timeline(),
        throttle: vec![throttle_ramp()],
        drift: vec![DriftEvent {
            cycle: 4,
            kind: DriftKind::LabelRotate,
            amount: 2.0,
        }],
        ..ScenarioConfig::default()
    };
    // Trace only the Helios leg: this is the combined churn + drift
    // walkthrough artifact referenced from EXPERIMENTS.md.
    let trace_path = dir.join("trace_scenario.jsonl");
    let sink = helios_obs::JsonlSink::create(&trace_path).expect("trace file");
    let handle = helios_obs::install(Box::new(sink));
    let mut helios_env = make_env(scenario.clone());
    let mut helios = HeliosStrategy::new(HeliosConfig::default());
    let helios_metrics = helios
        .run(&mut helios_env, CYCLES)
        .expect("helios survives churn");
    drop(handle); // detach + flush before the untraced sync leg
    let trace = std::fs::read_to_string(&trace_path).expect("read trace back");
    let mut kinds: Vec<String> = Vec::new();
    for record in helios_obs::parse_jsonl(&trace).expect("trace parses") {
        if let helios_obs::TraceEvent::ScenarioEvent { kind, .. } = record.event {
            if !kinds.contains(&kind) {
                kinds.push(kind);
            }
        }
    }
    kinds.sort();
    let mut sync_env = make_env(scenario);
    let sync_metrics = SyncFedAvg::new()
        .run(&mut sync_env, CYCLES)
        .expect("sync fedavg survives churn");
    ChurnComparison {
        helios_total_time: helios_metrics.total_time().as_secs_f64(),
        sync_total_time: sync_metrics.total_time().as_secs_f64(),
        helios_participants: helios_metrics
            .records()
            .iter()
            .map(|r| r.participants)
            .collect(),
        sync_participants: sync_metrics
            .records()
            .iter()
            .map(|r| r.participants)
            .collect(),
        final_population: helios_env.num_clients(),
        trace_event_kinds: kinds,
    }
}

fn main() {
    println!("Scenario dynamics — {POPULATION} devices, {CYCLES} cycles, seed {SEED}");

    let baseline = skip_pressure(ScenarioConfig::default());
    let throttled = skip_pressure(ScenarioConfig {
        throttle: vec![throttle_ramp()],
        ..ScenarioConfig::default()
    });
    println!(
        "skip pressure: baseline mass {} (max {}), throttled mass {} (max {})",
        baseline.skip_mass, baseline.max_skip, throttled.skip_mass, throttled.max_skip
    );

    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("results dir");

    let churn = churn_comparison(&dir);
    println!(
        "churn + throttle + drift: helios {:.2}s vs sync fedavg {:.2}s over {CYCLES} cycles",
        churn.helios_total_time, churn.sync_total_time
    );
    println!("trace event kinds: {:?}", churn.trace_event_kinds);

    let report = ScenarioBenchReport {
        seed: SEED,
        cycles: CYCLES,
        population: POPULATION,
        baseline,
        throttled,
        churn,
    };
    let path = dir.join("BENCH_scenarios.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&report).expect("serialize"),
    )
    .expect("write report");
    println!("\nwrote {}", path.display());

    // Self-check against the artifact we just wrote.
    let parsed: ScenarioBenchReport =
        serde_json::from_str(&std::fs::read_to_string(&path).expect("read back"))
            .expect("BENCH_scenarios.json must parse");
    let mut ok = true;
    let mut check = |name: &str, pass: bool| {
        println!("check: {name} — {}", if pass { "ok" } else { "FAIL" });
        ok &= pass;
    };
    check(
        &format!(
            "throttling increases straggler skip mass ({} > {})",
            parsed.throttled.skip_mass, parsed.baseline.skip_mass
        ),
        parsed.throttled.skip_mass > parsed.baseline.skip_mass,
    );
    check(
        "the fleet has stragglers to regulate",
        parsed.throttled.stragglers > 0,
    );
    check(
        "churn never starves a cycle (helios)",
        parsed.churn.helios_participants.len() == parsed.cycles
            && parsed.churn.helios_participants.iter().all(|&n| n > 0),
    );
    check(
        "churn never starves a cycle (sync fedavg)",
        parsed.churn.sync_participants.len() == parsed.cycles
            && parsed.churn.sync_participants.iter().all(|&n| n > 0),
    );
    check(
        &format!(
            "the join lands: final population {} > initial {}",
            parsed.churn.final_population, parsed.population
        ),
        parsed.churn.final_population > parsed.population,
    );
    check(
        &format!(
            "helios beats sync fedavg under churn + throttle ({:.2}s < {:.2}s)",
            parsed.churn.helios_total_time, parsed.churn.sync_total_time
        ),
        parsed.churn.helios_total_time < parsed.churn.sync_total_time,
    );
    for kind in ["join", "leave", "return", "throttle", "drift_label_rotate"] {
        check(
            &format!("trace carries scenario kind `{kind}`"),
            parsed.churn.trace_event_kinds.iter().any(|k| k == kind),
        );
    }
    if !ok {
        eprintln!("scenario dynamics self-check failed");
        std::process::exit(1);
    }
}
