//! **§VI.A ablation** — sensitivity to `P_s` (the top-contribution
//! fraction of each straggler's kept set) and to the skip-cycle
//! regulator.
//!
//! The paper selects `P_s ∈ [0.05, 0.1]`: `P_s = 0` degenerates to the
//! Random baseline's uniform rotation; `P_s = 1` freezes the selection on
//! the initial top set (no rotation → stale neurons, the condition the
//! Prop 2 analysis forbids via `p_i > 0`). The regulator column shows the
//! §VI.A rejoin rule's effect at the paper's operating point.

use helios_bench::{run_strategies_with_config, ExperimentSpec, Workload};
use helios_core::HeliosConfig;

fn main() {
    let cycles = 25;
    let seeds = [31u64, 32, 33];
    println!("P_s sensitivity (LeNet/MNIST-like, 4 devices / 2 stragglers)\n");
    println!(
        "{:<8} {:>12} {:>14} {:>14}",
        "P_s", "regulator", "tail accuracy", "tail std"
    );
    for &p_s in &[0.0f64, 0.05, 0.1, 0.3, 1.0] {
        for &regulation in &[true, false] {
            // Only show the regulator-off row at the paper's operating
            // point to keep the table readable.
            if !regulation && (p_s - 0.1).abs() > 1e-9 {
                continue;
            }
            let mut tail = 0.0;
            let mut std = 0.0;
            for &seed in &seeds {
                let spec = ExperimentSpec::paper_fleet(Workload::LenetMnist, 4, false, seed);
                let config = HeliosConfig {
                    p_s,
                    regulation,
                    ..HeliosConfig::default()
                };
                let m = run_strategies_with_config(&spec, config, cycles);
                tail += m.tail_accuracy(5) / seeds.len() as f64;
                std += m.tail_accuracy_std(10) / seeds.len() as f64;
            }
            println!(
                "{:<8.2} {:>12} {:>14.4} {:>14.4}",
                p_s,
                if regulation { "on" } else { "off" },
                tail,
                std
            );
        }
    }
    println!("\npaper guidance: P_s in [0.05, 0.1]; extreme values lose either");
    println!("the convergence anchor (P_s=0) or the rotation (P_s=1).");
}
