//! **BENCH_parallel** — kernel-throughput and thread-scaling
//! microbenchmark for the execution engine.
//!
//! Two sections, both written to `results/BENCH_parallel.json`:
//!
//! 1. **Single-core GEMM throughput** — the blocked cache-aware kernel
//!    (`matmul`) versus the pinned naive reference (`naive_matmul`) on
//!    the GEMM shapes a LeNet/AlexNet-class federated round actually
//!    runs (im2col'd convs, dense forward/backward), in flops/s. This
//!    section **self-checks**: the bench exits nonzero unless the
//!    blocked kernel's geometric-mean speedup across the alexnet-class
//!    shapes is ≥ 3× and every shape clears a 1.8× floor. (Per-shape
//!    3× everywhere is not physically available: on L1-resident dense
//!    shapes the naive kernel already runs near half of the machine's
//!    non-FMA peak.)
//! 2. **Thread scaling** — the hot tensor kernels (matmul, conv2d
//!    forward/backward) and a full federated client round
//!    (`FlEnv::train_all`) at thread budgets 1/2/4/8, with speedups
//!    relative to the serial baseline. On a single-core host every
//!    speedup is ≈1.0 (the engine degrades to inline serial
//!    execution); the parity test suite — not this bench — is what
//!    guarantees correctness at every width.

use helios_bench::results_dir;
use helios_data::{partition, Dataset, SyntheticVision};
use helios_device::presets;
use helios_fl::{FlConfig, FlEnv};
use helios_nn::models::ModelKind;
use helios_tensor::{
    conv2d, conv2d_backward, naive_matmul, uniform_init, ConvSpec, ParallelismConfig, Tensor,
    TensorRng,
};
use serde::Serialize;
use std::time::Instant;

const THREADS: [usize; 4] = [1, 2, 4, 8];
const REPS: usize = 5;

/// Gates for the blocked-vs-naive self-check (single core, best-of-N).
const GEOMEAN_FLOOR: f64 = 3.0;
const PER_SHAPE_FLOOR: f64 = 1.8;

/// Best-of trials for the GEMM throughput section: machine noise on a
/// shared host easily reaches ±25%, so each trial runs a fixed wall
/// window and the fastest per-iteration time wins.
const GEMM_TRIALS: usize = 6;
const GEMM_WINDOW_MS: u128 = 60;

#[derive(Debug, Serialize)]
struct KernelRecord {
    kernel: String,
    threads: usize,
    millis: f64,
    speedup_vs_serial: f64,
}

#[derive(Debug, Serialize)]
struct GemmRecord {
    shape: String,
    m: usize,
    k: usize,
    n: usize,
    /// Part of the alexnet-class set the self-check gates on.
    alexnet: bool,
    naive_gflops: f64,
    blocked_gflops: f64,
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    hardware_threads: usize,
    reps: usize,
    note: String,
    gemm_single_core: Vec<GemmRecord>,
    /// Geometric-mean blocked/naive speedup over the alexnet shapes —
    /// the self-checked headline number.
    gemm_geomean_speedup: f64,
    records: Vec<KernelRecord>,
}

/// Best-of-`REPS` wall time in milliseconds (minimum is the standard
/// low-noise estimator for short deterministic kernels).
fn time_millis(mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Best-of-`GEMM_TRIALS` throughput in flops/s: each trial spins the
/// kernel for a fixed wall window and the fastest per-iteration time
/// across trials wins.
fn throughput(f: &dyn Fn() -> Tensor, flops: f64) -> f64 {
    std::hint::black_box(f()); // warm-up (and workspace priming)
    let mut best_per_iter = f64::INFINITY;
    for _ in 0..GEMM_TRIALS {
        let start = Instant::now();
        let mut iters = 0u32;
        while start.elapsed().as_millis() < GEMM_WINDOW_MS {
            std::hint::black_box(f());
            iters += 1;
        }
        best_per_iter = best_per_iter.min(start.elapsed().as_secs_f64() / f64::from(iters));
    }
    flops / best_per_iter
}

/// The GEMM shapes one federated AlexNet-class cycle actually issues
/// (im2col'd convolutions and dense layers, forward and backward),
/// plus two square reference points. `(name, m, k, n, alexnet)`.
const GEMM_SHAPES: [(&str, usize, usize, usize, bool); 10] = [
    ("square_512", 512, 512, 512, false),
    ("square_1024", 1024, 1024, 1024, false),
    ("conv1_fwd", 2048, 27, 16, true),
    ("conv2_fwd", 512, 144, 32, true),
    ("conv3_fwd", 512, 288, 32, true),
    ("conv2_bwd_dw", 32, 512, 144, true),
    ("dense1_fwd", 32, 512, 128, true),
    ("dense1_bwd_dw", 512, 32, 128, true),
    ("dense1_bwd_dx", 32, 128, 512, true),
    ("dense2_fwd", 32, 128, 10, true),
];

/// Times the blocked kernel against the pinned naive reference on a
/// single core and returns the per-shape curve plus the alexnet
/// geometric-mean speedup.
fn bench_gemm_single_core() -> (Vec<GemmRecord>, f64) {
    let _serial = ParallelismConfig::serial().scoped();
    let mut rng = TensorRng::seed_from(42);
    let mut out = Vec::new();
    for (shape, m, k, n, alexnet) in GEMM_SHAPES {
        let a = uniform_init(&[m, k], -1.0, 1.0, &mut rng);
        let b = uniform_init(&[k, n], -1.0, 1.0, &mut rng);
        let flops = (2 * m * k * n) as f64;
        let blocked = throughput(&|| a.matmul(&b).expect("matmul"), flops);
        let naive = throughput(&|| naive_matmul(&a, &b).expect("naive"), flops);
        out.push(GemmRecord {
            shape: shape.to_string(),
            m,
            k,
            n,
            alexnet,
            naive_gflops: naive / 1e9,
            blocked_gflops: blocked / 1e9,
            speedup: blocked / naive,
        });
    }
    let alexnet: Vec<f64> = out
        .iter()
        .filter(|r| r.alexnet)
        .map(|r| r.speedup)
        .collect();
    let geomean = (alexnet.iter().map(|s| s.ln()).sum::<f64>() / alexnet.len() as f64).exp();
    (out, geomean)
}

fn bench_kernels(records: &mut Vec<KernelRecord>) {
    let mut rng = TensorRng::seed_from(7);
    let a = uniform_init(&[256, 256], -1.0, 1.0, &mut rng);
    let b = uniform_init(&[256, 256], -1.0, 1.0, &mut rng);
    let spec = ConvSpec::new(3, 16, 3, 1, 1);
    let x = uniform_init(&[8, 3, 32, 32], -1.0, 1.0, &mut rng);
    let w = uniform_init(&spec.weight_dims(), -0.5, 0.5, &mut rng);
    let bias = uniform_init(&[16], -0.1, 0.1, &mut rng);
    let (oh, ow) = spec.output_hw(32, 32);
    let gout = uniform_init(&[8, 16, oh, ow], -1.0, 1.0, &mut rng);

    type NamedKernel<'a> = (&'a str, Box<dyn Fn()>);
    let kernels: Vec<NamedKernel<'_>> = vec![
        (
            "matmul_256",
            Box::new({
                let (a, b) = (a.clone(), b.clone());
                move || {
                    a.matmul(&b).expect("matmul");
                }
            }),
        ),
        (
            "conv2d_8x3x32",
            Box::new({
                let (x, w, bias) = (x.clone(), w.clone(), bias.clone());
                move || {
                    conv2d(&x, &w, &bias, &spec).expect("conv2d");
                }
            }),
        ),
        (
            "conv2d_backward_8x3x32",
            Box::new({
                let (x, w, gout) = (x.clone(), w.clone(), gout.clone());
                move || {
                    conv2d_backward(&x, &w, &gout, &spec).expect("conv2d_backward");
                }
            }),
        ),
    ];

    for (name, f) in &kernels {
        let mut serial_ms = 0.0;
        for &t in &THREADS {
            let guard = ParallelismConfig::with_threads(t);
            let ms = time_millis(|| {
                let _g = guard.scoped();
                f();
            });
            if t == 1 {
                serial_ms = ms;
            }
            records.push(KernelRecord {
                kernel: (*name).to_string(),
                threads: t,
                millis: ms,
                speedup_vs_serial: serial_ms / ms,
            });
        }
    }
}

fn client_round_env(threads: usize) -> FlEnv {
    let clients = 4;
    let mut rng = TensorRng::seed_from(11);
    let (train, test) = SyntheticVision::mnist_like()
        .generate(40 * clients, 40, &mut rng)
        .expect("dataset");
    let shards: Vec<Dataset> = partition::iid(train.len(), clients, &mut rng)
        .into_iter()
        .map(|idx| train.subset(&idx).expect("subset"))
        .collect();
    FlEnv::new(
        ModelKind::LeNet,
        presets::mixed_fleet(2, 2),
        shards,
        test,
        FlConfig {
            parallelism: ParallelismConfig::with_threads(threads),
            ..FlConfig::default()
        },
    )
    .expect("env")
}

fn bench_client_round(records: &mut Vec<KernelRecord>) {
    let mut serial_ms = 0.0;
    for &t in &THREADS {
        let mut env = client_round_env(t);
        let ms = time_millis(|| {
            // Re-broadcast so every rep trains from the same state.
            env.broadcast_global(0).expect("broadcast");
            env.train_all().expect("train_all");
        });
        if t == 1 {
            serial_ms = ms;
        }
        records.push(KernelRecord {
            kernel: "fl_client_round_4x".to_string(),
            threads: t,
            millis: ms,
            speedup_vs_serial: serial_ms / ms,
        });
    }
}

fn main() {
    // Zero the process-global host accumulators (kernel counters, nn
    // wall timers) so repeated bench invocations don't bleed totals.
    let _host = helios_nn::HostMetricsScope::enter();
    let hardware = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    let (gemm, geomean) = bench_gemm_single_core();
    println!("Blocked vs naive GEMM — single core, best of {GEMM_TRIALS}");
    println!(
        "{:<16} {:>6} {:>5} {:>5} {:>14} {:>16} {:>9}",
        "shape", "m", "k", "n", "naive GF/s", "blocked GF/s", "speedup"
    );
    for r in &gemm {
        println!(
            "{:<16} {:>6} {:>5} {:>5} {:>14.2} {:>16.2} {:>8.2}x",
            r.shape, r.m, r.k, r.n, r.naive_gflops, r.blocked_gflops, r.speedup
        );
    }
    println!("alexnet-shape geomean speedup: {geomean:.2}x\n");

    let mut records = Vec::new();
    bench_kernels(&mut records);
    bench_client_round(&mut records);

    println!("Parallel execution engine — thread scaling (hardware threads: {hardware})");
    println!(
        "{:<24} {:>8} {:>12} {:>10}",
        "kernel", "threads", "best ms", "speedup"
    );
    for r in &records {
        println!(
            "{:<24} {:>8} {:>12.3} {:>9.2}x",
            r.kernel, r.threads, r.millis, r.speedup_vs_serial
        );
    }

    let report = BenchReport {
        hardware_threads: hardware,
        reps: REPS,
        note: "gemm_single_core compares the blocked cache-aware kernel to the pinned \
               naive reference on one core (self-checked: alexnet geomean >= 3x). \
               Thread-scaling speedups are machine-dependent: they scale with physical \
               cores up to the thread budget, and an explicit budget above the hardware \
               thread count only adds spawn overhead (<=1.0 on a single-core host). \
               Outputs are bitwise identical at every width; see \
               tests/tests/parallel_parity.rs and tests/tests/gemm_parity.rs"
            .to_string(),
        gemm_single_core: gemm,
        gemm_geomean_speedup: geomean,
        records,
    };
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("results dir");
    let path = dir.join("BENCH_parallel.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&report).expect("serialize"),
    )
    .expect("write report");
    println!("\nwrote {}", path.display());

    // Self-check: the blocked kernel must actually pay for its
    // complexity on the shapes a federated round runs.
    let mut failed = false;
    for r in report.gemm_single_core.iter().filter(|r| r.alexnet) {
        if r.speedup < PER_SHAPE_FLOOR {
            eprintln!(
                "SELF-CHECK FAIL: {} blocked/naive {:.2}x < per-shape floor {PER_SHAPE_FLOOR}x",
                r.shape, r.speedup
            );
            failed = true;
        }
    }
    if report.gemm_geomean_speedup < GEOMEAN_FLOOR {
        eprintln!(
            "SELF-CHECK FAIL: alexnet geomean {:.2}x < {GEOMEAN_FLOOR}x",
            report.gemm_geomean_speedup
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "self-check OK: alexnet geomean {:.2}x >= {GEOMEAN_FLOOR}x, every shape >= {PER_SHAPE_FLOOR}x",
        report.gemm_geomean_speedup
    );
}
