//! **BENCH_parallel** — thread-scaling microbenchmark for the parallel
//! execution engine.
//!
//! Times the hot tensor kernels (matmul, conv2d forward/backward) and a
//! full federated client round (`FlEnv::train_all`) at thread budgets
//! 1/2/4/8, and writes `results/BENCH_parallel.json` with per-kernel
//! wall times and speedups relative to the serial baseline. Results are
//! machine-dependent: on a single-core host every speedup is ≈1.0 (the
//! engine degrades to inline serial execution); the parity test suite —
//! not this bench — is what guarantees correctness at every width.

use helios_bench::results_dir;
use helios_data::{partition, Dataset, SyntheticVision};
use helios_device::presets;
use helios_fl::{FlConfig, FlEnv};
use helios_nn::models::ModelKind;
use helios_tensor::{
    conv2d, conv2d_backward, uniform_init, ConvSpec, ParallelismConfig, TensorRng,
};
use serde::Serialize;
use std::time::Instant;

const THREADS: [usize; 4] = [1, 2, 4, 8];
const REPS: usize = 5;

#[derive(Debug, Serialize)]
struct KernelRecord {
    kernel: String,
    threads: usize,
    millis: f64,
    speedup_vs_serial: f64,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    hardware_threads: usize,
    reps: usize,
    note: String,
    records: Vec<KernelRecord>,
}

/// Best-of-`REPS` wall time in milliseconds (minimum is the standard
/// low-noise estimator for short deterministic kernels).
fn time_millis(mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn bench_kernels(records: &mut Vec<KernelRecord>) {
    let mut rng = TensorRng::seed_from(7);
    let a = uniform_init(&[256, 256], -1.0, 1.0, &mut rng);
    let b = uniform_init(&[256, 256], -1.0, 1.0, &mut rng);
    let spec = ConvSpec::new(3, 16, 3, 1, 1);
    let x = uniform_init(&[8, 3, 32, 32], -1.0, 1.0, &mut rng);
    let w = uniform_init(&spec.weight_dims(), -0.5, 0.5, &mut rng);
    let bias = uniform_init(&[16], -0.1, 0.1, &mut rng);
    let (oh, ow) = spec.output_hw(32, 32);
    let gout = uniform_init(&[8, 16, oh, ow], -1.0, 1.0, &mut rng);

    type NamedKernel<'a> = (&'a str, Box<dyn Fn()>);
    let kernels: Vec<NamedKernel<'_>> = vec![
        (
            "matmul_256",
            Box::new({
                let (a, b) = (a.clone(), b.clone());
                move || {
                    a.matmul(&b).expect("matmul");
                }
            }),
        ),
        (
            "conv2d_8x3x32",
            Box::new({
                let (x, w, bias) = (x.clone(), w.clone(), bias.clone());
                move || {
                    conv2d(&x, &w, &bias, &spec).expect("conv2d");
                }
            }),
        ),
        (
            "conv2d_backward_8x3x32",
            Box::new({
                let (x, w, gout) = (x.clone(), w.clone(), gout.clone());
                move || {
                    conv2d_backward(&x, &w, &gout, &spec).expect("conv2d_backward");
                }
            }),
        ),
    ];

    for (name, f) in &kernels {
        let mut serial_ms = 0.0;
        for &t in &THREADS {
            let guard = ParallelismConfig::with_threads(t);
            let ms = time_millis(|| {
                let _g = guard.scoped();
                f();
            });
            if t == 1 {
                serial_ms = ms;
            }
            records.push(KernelRecord {
                kernel: (*name).to_string(),
                threads: t,
                millis: ms,
                speedup_vs_serial: serial_ms / ms,
            });
        }
    }
}

fn client_round_env(threads: usize) -> FlEnv {
    let clients = 4;
    let mut rng = TensorRng::seed_from(11);
    let (train, test) = SyntheticVision::mnist_like()
        .generate(40 * clients, 40, &mut rng)
        .expect("dataset");
    let shards: Vec<Dataset> = partition::iid(train.len(), clients, &mut rng)
        .into_iter()
        .map(|idx| train.subset(&idx).expect("subset"))
        .collect();
    FlEnv::new(
        ModelKind::LeNet,
        presets::mixed_fleet(2, 2),
        shards,
        test,
        FlConfig {
            parallelism: ParallelismConfig::with_threads(threads),
            ..FlConfig::default()
        },
    )
    .expect("env")
}

fn bench_client_round(records: &mut Vec<KernelRecord>) {
    let mut serial_ms = 0.0;
    for &t in &THREADS {
        let mut env = client_round_env(t);
        let ms = time_millis(|| {
            // Re-broadcast so every rep trains from the same state.
            env.broadcast_global(0).expect("broadcast");
            env.train_all().expect("train_all");
        });
        if t == 1 {
            serial_ms = ms;
        }
        records.push(KernelRecord {
            kernel: "fl_client_round_4x".to_string(),
            threads: t,
            millis: ms,
            speedup_vs_serial: serial_ms / ms,
        });
    }
}

fn main() {
    // Zero the process-global host accumulators (kernel counters, nn
    // wall timers) so repeated bench invocations don't bleed totals.
    let _host = helios_nn::HostMetricsScope::enter();
    let hardware = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut records = Vec::new();
    bench_kernels(&mut records);
    bench_client_round(&mut records);

    println!("Parallel execution engine — thread scaling (hardware threads: {hardware})");
    println!(
        "{:<24} {:>8} {:>12} {:>10}",
        "kernel", "threads", "best ms", "speedup"
    );
    for r in &records {
        println!(
            "{:<24} {:>8} {:>12.3} {:>9.2}x",
            r.kernel, r.threads, r.millis, r.speedup_vs_serial
        );
    }

    let report = BenchReport {
        hardware_threads: hardware,
        reps: REPS,
        note: "speedups are machine-dependent: they scale with physical cores up to \
               the thread budget, and an explicit budget above the hardware thread \
               count only adds spawn overhead (≤1.0 on a single-core host). Outputs \
               are bitwise identical at every width; see tests/tests/parallel_parity.rs"
            .to_string(),
        records,
    };
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("results dir");
    let path = dir.join("BENCH_parallel.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&report).expect("serialize"),
    )
    .expect("write report");
    println!("\nwrote {}", path.display());
}
