//! Runs a JSON-described experiment (see `helios_bench::ExperimentConfig`).
//!
//! ```text
//! cargo run -p helios-bench --release --bin custom -- experiment.json
//! ```

use helios_bench::{format_curves, format_summary, ExperimentConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: custom <experiment.json>");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let config = match ExperimentConfig::from_json(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let metrics = config.run();
    println!("{}", format_curves(&metrics, (config.cycles / 10).max(1)));
    println!("{}", format_summary(&metrics, 0.5));
    ExitCode::SUCCESS
}
