//! **Fig 6** — model-aggregation optimization evaluation.
//!
//! Helios with the heterogeneity-weighted aggregation (`α_n = r_n/Σr_n`,
//! Eq 10) against "S.T. Only" (soft-training with plain FedAvg weights),
//! as the straggler count grows from 1 to 4. Paper shape: the weighted
//! aggregation lifts accuracy (up to 17.37% there) and visibly reduces
//! the cycle-to-cycle accuracy fluctuation of partial-model aggregation.
//!
//! Runs under the label-shard Non-IID split: partial-model aggregation
//! error is what α damps, and it only materializes when clients' updates
//! genuinely disagree (see `DESIGN.md` §4a.3).

use helios_bench::{
    format_curves, results_dir, run_strategies, write_csvs, ExperimentSpec, StrategySet, Workload,
};

fn main() {
    let cycles = 35;
    let seeds = [21u64, 22, 23, 24, 25];
    println!(
        "Fig 6: Helios vs S.T. Only (AlexNet/CIFAR-10-like, label-shard Non-IID), stragglers 1→4\n"
    );
    println!(
        "{:<12} {:>14} {:>14} {:>12} {:>12}",
        "stragglers", "st_only tail", "helios tail", "st_only std", "helios std"
    );
    for stragglers in 1..=4usize {
        let mut tail = [0.0f64; 2];
        let mut std = [0.0f64; 2];
        let mut example = None;
        for &seed in &seeds {
            let spec = ExperimentSpec {
                capable: 2,
                stragglers,
                per_client: 150,
                ..ExperimentSpec::paper_fleet(Workload::AlexnetCifar10, 4, true, seed)
            };
            let metrics = run_strategies(&spec, StrategySet::AggregationAblation, cycles);
            for (i, m) in metrics.iter().enumerate() {
                tail[i] += m.tail_accuracy(8) / seeds.len() as f64;
                std[i] += m.tail_accuracy_std(10) / seeds.len() as f64;
            }
            if seed == seeds[0] {
                example = Some(metrics);
            }
        }
        println!(
            "{:<12} {:>14.4} {:>14.4} {:>12.4} {:>12.4}",
            stragglers, tail[0], tail[1], std[0], std[1]
        );
        if let Some(metrics) = example {
            write_csvs(
                &results_dir().join("fig6"),
                &format!("fig6_{stragglers}stragglers"),
                &metrics,
            )
            .expect("results directory is writable");
            if stragglers == 4 {
                println!("\nexample curves (seed {}, 4 stragglers):", seeds[0]);
                println!("{}", format_curves(&metrics, 2));
            }
        }
    }
    println!("paper shape: helios ≥ st_only in accuracy, with smaller fluctuation,");
    println!("and the gap grows with the straggler count.");
}
