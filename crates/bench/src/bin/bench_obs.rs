//! **BENCH_obs** — cost and coverage of the observability layer.
//!
//! Runs a lossy-link Helios workload (the `bench_engine` fleet with the
//! `bench_net` fault profile) twice: once with no sink installed (the
//! production configuration — tracing disabled) and once with JSONL +
//! ring-buffer sinks attached. From the disabled run it measures the
//! workload wall time; a micro-benchmark then prices one disabled
//! `emit()` call, and the product `events × per_emit_cost` must stay
//! under 3% of the workload time — the "zero-cost when off" contract of
//! `helios-obs`. The enabled run writes `results/trace_obs.jsonl` and a
//! Chrome `trace_event` file (`results/trace_obs_chrome.json`, loadable
//! in Perfetto), and the trace is re-parsed to prove it round-trips.
//! Writes `results/BENCH_obs.json`, re-parses it, and exits nonzero
//! when any self-check fails.

use helios_bench::results_dir;
use helios_core::{HeliosConfig, HeliosStrategy};
use helios_data::{partition, Dataset, SyntheticVision};
use helios_device::presets;
use helios_fl::{FaultConfig, FlConfig, FlEnv, LinkProfile, NetConfig, Strategy};
use helios_nn::models::ModelKind;
use helios_obs::{chrome_trace, RingBufferSink, TraceEvent};
use helios_tensor::TensorRng;
use serde::{Deserialize, Serialize};
use std::time::Instant;

const SEED: u64 = 42;
const CYCLES: usize = 3;
const CAPABLE: usize = 2;
const STRAGGLERS: usize = 2;
/// Disabled-`emit` micro-benchmark iterations.
const EMIT_REPS: u64 = 1_000_000;
/// Disabled-mode overhead budget: estimated emit cost over workload
/// wall time.
const OVERHEAD_BUDGET: f64 = 0.03;

/// Capable devices sit behind a fast, low-latency link.
const CAPABLE_LINK: LinkProfile = LinkProfile::constrained(50e6, 0.01);
/// Stragglers get the paper's constrained edge uplink.
const STRAGGLER_LINK: LinkProfile = LinkProfile::constrained(2e6, 0.05);

#[derive(Debug, Serialize, Deserialize)]
struct ObsBenchReport {
    seed: u64,
    cycles: usize,
    /// Wall time of the workload with tracing disabled (no sink).
    workload_disabled_s: f64,
    /// Wall time of the same workload with JSONL + ring sinks attached.
    workload_enabled_s: f64,
    /// Events the enabled run emitted.
    events_emitted: usize,
    /// Measured cost of one disabled `emit()` call, nanoseconds.
    disabled_emit_ns: f64,
    /// `events × per-emit cost` over the disabled workload time — the
    /// worst-case share tracing instrumentation costs when off.
    estimated_disabled_overhead: f64,
    /// The budget the estimate is checked against.
    overhead_budget: f64,
    /// FNV-1a digest of the JSONL trace bytes (the determinism pin the
    /// trace test asserts independently).
    trace_digest_fnv1a: String,
    /// Chrome `trace_event` objects exported.
    chrome_events: usize,
    /// Host-side metric names visible in the registry snapshot.
    registry_metrics: Vec<String>,
}

fn make_env() -> FlEnv {
    let clients = CAPABLE + STRAGGLERS;
    let mut rng = TensorRng::seed_from(SEED);
    let (train, test) = SyntheticVision::mnist_like()
        .generate(40 * clients, 40, &mut rng)
        .expect("dataset");
    let shards: Vec<Dataset> = partition::iid(train.len(), clients, &mut rng)
        .into_iter()
        .map(|idx| train.subset(&idx).expect("subset"))
        .collect();
    let mut env = FlEnv::new(
        ModelKind::LeNet,
        presets::mixed_fleet(CAPABLE, STRAGGLERS),
        shards,
        test,
        FlConfig {
            seed: SEED,
            net: NetConfig {
                enabled: true,
                link: CAPABLE_LINK,
                faults: FaultConfig {
                    drop_prob: 0.05,
                    corrupt_prob: 0.05,
                    delay_prob: 0.10,
                    max_extra_delay_s: 0.25,
                },
                ..NetConfig::default()
            },
            ..FlConfig::default()
        },
    )
    .expect("env");
    // mixed_fleet puts capable devices first, stragglers after.
    for i in CAPABLE..clients {
        env.set_link(i, STRAGGLER_LINK).expect("set_link");
    }
    env
}

/// Runs the Helios strategy over a fresh environment, returning wall
/// seconds.
fn run_workload() -> f64 {
    let mut env = make_env();
    let mut strategy = HeliosStrategy::new(HeliosConfig::default());
    let start = Instant::now();
    strategy.run(&mut env, CYCLES).expect("strategy run");
    start.elapsed().as_secs_f64()
}

/// Prices one disabled `emit()` call in nanoseconds.
fn disabled_emit_ns() -> f64 {
    assert!(
        !helios_obs::enabled(),
        "micro-benchmark requires tracing off"
    );
    let start = Instant::now();
    for i in 0..EMIT_REPS {
        // The closure captures `i` so the optimizer cannot hoist the
        // whole loop; `emit` drops it unevaluated while disabled.
        helios_obs::emit(|| TraceEvent::Timeout { device: i });
    }
    start.elapsed().as_secs_f64() * 1e9 / EMIT_REPS as f64
}

fn main() {
    // Zero the process-global host accumulators and bridge them into
    // the obs registry so the snapshot below reads this run only.
    let _host = helios_nn::HostMetricsScope::enter();
    helios_fl::register_host_gauges();

    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("results dir");

    // 1. Production configuration: no sink, tracing disabled.
    let workload_disabled_s = run_workload();

    // 2. How much does the instrumentation cost while disabled?
    let emit_ns = disabled_emit_ns();

    // 3. Traced run: JSONL + ring sinks, same seed.
    let trace_path = dir.join("trace_obs.jsonl");
    let ring = RingBufferSink::with_capacity(1 << 20);
    let jsonl = helios_obs::JsonlSink::create(&trace_path).expect("trace file");
    let handle_ring = helios_obs::install(Box::new(ring.clone()));
    let handle_jsonl = helios_obs::install(Box::new(jsonl));
    let start = Instant::now();
    let workload_enabled_s = {
        let mut env = make_env();
        let mut strategy = HeliosStrategy::new(HeliosConfig::default());
        strategy.run(&mut env, CYCLES).expect("traced strategy run");
        start.elapsed().as_secs_f64()
    };
    drop(handle_jsonl); // detach + flush the file
    drop(handle_ring);

    let records = ring.records();
    assert!(!records.is_empty(), "traced run must emit events");

    // The JSONL file must round-trip to the in-memory record stream.
    let trace_bytes = std::fs::read(&trace_path).expect("read trace back");
    let parsed = helios_obs::parse_jsonl(&String::from_utf8(trace_bytes.clone()).expect("utf8"))
        .expect("trace parses");
    assert_eq!(parsed, records, "JSONL round-trips the emitted stream");
    let digest = helios_obs::content_digest(&trace_bytes);

    // 4. Chrome trace_event export for Perfetto (see EXPERIMENTS.md).
    let chrome = chrome_trace(&records);
    let chrome_path = dir.join("trace_obs_chrome.json");
    std::fs::write(&chrome_path, &chrome).expect("write chrome trace");
    let chrome_json: serde::value::Value =
        serde_json::from_str(&chrome).expect("chrome JSON parses");
    let chrome_events = match &chrome_json {
        serde::value::Value::Map(pairs) => match serde::value::find(pairs, "traceEvents") {
            Some(serde::value::Value::Seq(events)) => events.len(),
            _ => 0,
        },
        _ => 0,
    };
    assert!(chrome_events > 0, "chrome export must contain events");

    let estimated = emit_ns * 1e-9 * records.len() as f64 / workload_disabled_s;
    let registry_metrics: Vec<String> = helios_obs::registry::snapshot()
        .into_iter()
        .map(|s| s.name)
        .collect();

    println!("Observability cost — {CAPABLE} capable + {STRAGGLERS} stragglers, {CYCLES} cycles");
    println!("workload (tracing off) {workload_disabled_s:>9.3}s");
    println!("workload (traced)      {workload_enabled_s:>9.3}s");
    println!("events emitted         {:>9}", records.len());
    println!("disabled emit          {emit_ns:>9.2} ns/call");
    println!(
        "est. disabled overhead {:>9.4}% (budget {:.1}%)",
        estimated * 100.0,
        OVERHEAD_BUDGET * 100.0
    );
    println!("trace digest           {digest:#018x}");
    println!("chrome events          {chrome_events:>9}");

    let report = ObsBenchReport {
        seed: SEED,
        cycles: CYCLES,
        workload_disabled_s,
        workload_enabled_s,
        events_emitted: records.len(),
        disabled_emit_ns: emit_ns,
        estimated_disabled_overhead: estimated,
        overhead_budget: OVERHEAD_BUDGET,
        trace_digest_fnv1a: format!("{digest:#018x}"),
        chrome_events,
        registry_metrics,
    };
    let path = dir.join("BENCH_obs.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&report).expect("serialize"),
    )
    .expect("write report");
    println!("\nwrote {}", path.display());
    println!("wrote {}", trace_path.display());
    println!("wrote {}", chrome_path.display());

    // Self-check against the artifact we just wrote: tracing must be
    // effectively free when no sink is installed, and the registry must
    // expose the bridged host gauges.
    let parsed: ObsBenchReport =
        serde_json::from_str(&std::fs::read_to_string(&path).expect("read back"))
            .expect("BENCH_obs.json must parse");
    let overhead_ok = parsed.estimated_disabled_overhead < parsed.overhead_budget;
    let gauges_ok = parsed
        .registry_metrics
        .iter()
        .any(|n| n == "host.tensor.kernel_flops");
    println!(
        "check: disabled overhead {:.4}% < {:.1}% — {}",
        parsed.estimated_disabled_overhead * 100.0,
        parsed.overhead_budget * 100.0,
        if overhead_ok { "ok" } else { "FAIL" }
    );
    println!(
        "check: host gauges bridged into the registry — {}",
        if gauges_ok { "ok" } else { "FAIL" }
    );
    if !(overhead_ok && gauges_ok) {
        eprintln!("observability self-check failed");
        std::process::exit(1);
    }
}
