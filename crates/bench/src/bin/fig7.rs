//! **Fig 7** — Helios evaluation with Non-IID data.
//!
//! The Fig 5 comparison repeated under the label-shard Non-IID split of
//! Zhao et al. (each client holds ~2 classes), with 4 and 6 devices.
//! Paper shape: Non-IID degrades every method, but Helios keeps the best
//! accuracy/speed trade-off among the straggler-tolerant methods, and
//! asynchronous methods suffer most (stale updates from unique-class
//! stragglers).
//!
//! Usage: `fig7 [mnist|cifar10|cifar100] [cycles]` — defaults to the
//! LeNet/MNIST-like workload the figure leads with.

use helios_bench::{
    format_curves, format_summary, results_dir, run_strategies, write_csvs, ExperimentSpec,
    StrategySet, Workload,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let workload = args
        .get(1)
        .map(|s| {
            Workload::parse(s).unwrap_or_else(|| {
                eprintln!("unknown workload {s}; use mnist|cifar10|cifar100");
                std::process::exit(2);
            })
        })
        .unwrap_or(Workload::LenetMnist);
    let cycles = args
        .get(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| workload.default_cycles() + 10);

    for devices in [4usize, 6] {
        let spec = ExperimentSpec::paper_fleet(workload, devices, true, 42);
        println!(
            "=== Fig 7: Non-IID · {} · {} devices ({} stragglers) · {} cycles ===",
            workload.label(),
            devices,
            spec.stragglers,
            cycles
        );
        let metrics = run_strategies(&spec, StrategySet::Paper, cycles);
        println!("{}", format_curves(&metrics, (cycles / 10).max(1)));
        println!("{}", format_summary(&metrics, 0.5));
        write_csvs(
            &results_dir().join("fig7"),
            &format!("fig7_{}_{}dev", workload.label().replace('/', "_"), devices),
            &metrics,
        )
        .expect("results directory is writable");
    }
}
