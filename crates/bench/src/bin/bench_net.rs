//! **BENCH_net** — simulated-network cost of a federated round.
//!
//! Runs the same mixed fleet twice through the simulated transport with
//! constrained straggler links and mild fault injection: once under
//! synchronous FedAvg (every device uploads the full model) and once
//! under Helios (stragglers soft-train and upload the compact masked
//! wire layout). On top of that baseline pair it sweeps every wire-v2
//! compression mode through the same Helios workload, producing an
//! accuracy-vs-bytes tradeoff curve. Writes `results/BENCH_net.json`
//! with per-device bytes on the wire, retry/timeout counts, round
//! times, and the curve, then re-parses its own output and asserts:
//!
//! - every straggler's upload frame is genuinely smaller than the
//!   full-model frame;
//! - every *lossy* v2 mode strictly shrinks the straggler upload frame
//!   below the v1 masked layout while keeping final accuracy within its
//!   per-mode tolerance of the uncompressed reference;
//! - the lossless delta mode never exceeds the masked frame size.
//!
//! Exits nonzero if any check fails.

use helios_bench::results_dir;
use helios_core::{HeliosConfig, HeliosStrategy};
use helios_data::{partition, Dataset, SyntheticVision};
use helios_device::presets;
use helios_fl::{
    CompressionConfig, CompressionMode, FaultConfig, FlConfig, FlEnv, LinkProfile, NetConfig,
    Strategy, SyncFedAvg, WireSize,
};
use helios_nn::models::ModelKind;
use helios_tensor::TensorRng;
use serde::{Deserialize, Serialize};

const SEED: u64 = 42;
const CYCLES: usize = 3;
const CAPABLE: usize = 2;
const STRAGGLERS: usize = 2;

/// Capable devices sit behind a fast, low-latency link.
const CAPABLE_LINK: LinkProfile = LinkProfile::constrained(50e6, 0.01);
/// Stragglers get the paper's constrained edge uplink, with jitter.
const STRAGGLER_LINK: LinkProfile = LinkProfile::constrained(2e6, 0.05).with_jitter(0.01);

#[derive(Debug, Serialize, Deserialize)]
struct DeviceReport {
    client: usize,
    straggler: bool,
    upload_bytes: u64,
    download_bytes: u64,
    retries: u64,
    missed_cycles: u64,
    /// Size of one upload frame under this device's final mask state.
    upload_frame_bytes: usize,
}

#[derive(Debug, Serialize, Deserialize)]
struct RunReport {
    strategy: String,
    cycles: usize,
    total_sim_time_s: f64,
    bytes_on_wire: u64,
    delivered_bytes: u64,
    retries: u64,
    corruptions_detected: u64,
    timeouts: u64,
    failures: u64,
    devices: Vec<DeviceReport>,
}

/// One point on the wire-v2 accuracy-vs-bytes tradeoff curve: the same
/// Helios workload run under one compression mode.
#[derive(Debug, Serialize, Deserialize)]
struct ModePoint {
    mode: String,
    lossless: bool,
    /// Per-mode tolerance on `accuracy_delta_vs_reference` (0 for
    /// lossless modes — they must match the reference exactly).
    accuracy_tolerance: f64,
    final_accuracy: f64,
    final_loss: f64,
    accuracy_delta_vs_reference: f64,
    /// Planned upload frame size for a straggler under its final mask.
    straggler_upload_frame_bytes: usize,
    /// Straggler frame size relative to the v1 masked layout.
    bytes_vs_masked_ratio: f64,
    /// Measured upload bytes across the run (includes retries).
    total_upload_bytes: u64,
}

#[derive(Debug, Serialize, Deserialize)]
struct NetBenchReport {
    seed: u64,
    cycles: usize,
    param_count: usize,
    /// Wire size of one full-model frame — the baseline every masked
    /// upload is compared against.
    full_frame_bytes: usize,
    runs: Vec<RunReport>,
    /// Wire-v2 accuracy-vs-bytes tradeoff curve (Helios workload, one
    /// point per compression mode; mode "none" is the reference).
    compression_curve: Vec<ModePoint>,
}

fn make_env(compression: CompressionConfig) -> FlEnv {
    let clients = CAPABLE + STRAGGLERS;
    let mut rng = TensorRng::seed_from(SEED);
    let (train, test) = SyntheticVision::mnist_like()
        .generate(40 * clients, 40, &mut rng)
        .expect("dataset");
    let shards: Vec<Dataset> = partition::iid(train.len(), clients, &mut rng)
        .into_iter()
        .map(|idx| train.subset(&idx).expect("subset"))
        .collect();
    let mut env = FlEnv::new(
        ModelKind::LeNet,
        presets::mixed_fleet(CAPABLE, STRAGGLERS),
        shards,
        test,
        FlConfig {
            seed: SEED,
            net: NetConfig {
                enabled: true,
                link: CAPABLE_LINK,
                faults: FaultConfig {
                    drop_prob: 0.05,
                    corrupt_prob: 0.05,
                    delay_prob: 0.10,
                    max_extra_delay_s: 0.25,
                },
                compression,
                ..NetConfig::default()
            },
            ..FlConfig::default()
        },
    )
    .expect("env");
    // mixed_fleet puts capable devices first, stragglers after.
    for i in CAPABLE..clients {
        env.set_link(i, STRAGGLER_LINK).expect("set_link");
    }
    env
}

/// Runs `strategy` on `env` and reports the transport's ledger plus the
/// final cycle's `(accuracy, loss)`.
fn run_report(name: &str, strategy: &mut dyn Strategy, env: &mut FlEnv) -> (RunReport, f64, f64) {
    let metrics = strategy.run(env, CYCLES).expect("strategy run");
    let last = metrics.records().last().expect("at least one cycle");
    let (final_accuracy, final_loss) = (last.test_accuracy, last.test_loss);
    let transport = env.transport().expect("networking enabled");
    let stats = *transport.stats();
    let devices = (0..transport.num_devices())
        .map(|i| {
            let d = transport.device_stats(i);
            DeviceReport {
                client: i,
                straggler: i >= CAPABLE,
                upload_bytes: d.upload_bytes,
                download_bytes: d.download_bytes,
                retries: d.retries,
                missed_cycles: d.missed_cycles,
                upload_frame_bytes: env
                    .client(i)
                    .expect("client")
                    .upload_wire_size()
                    .total_bytes(),
            }
        })
        .collect();
    let report = RunReport {
        strategy: name.to_string(),
        cycles: metrics.records().len(),
        total_sim_time_s: metrics.total_time().as_secs_f64(),
        bytes_on_wire: stats.bytes_on_wire,
        delivered_bytes: stats.delivered_bytes,
        retries: stats.retries,
        corruptions_detected: stats.corruptions_detected,
        timeouts: stats.timeouts,
        failures: stats.failures,
        devices,
    };
    (report, final_accuracy, final_loss)
}

/// Per-mode accuracy tolerance for the curve's self-check. Lossless
/// modes get 0.0 — they must reproduce the reference exactly.
fn mode_tolerance(mode: CompressionMode) -> f64 {
    match mode {
        CompressionMode::None | CompressionMode::Delta => 0.0,
        CompressionMode::QuantF16 => 0.10,
        CompressionMode::TopK | CompressionMode::QuantInt8 => 0.20,
    }
}

/// Runs the Helios workload under one compression mode and condenses it
/// to a tradeoff-curve point. `reference_accuracy`/`masked_frame_bytes`
/// come from the mode-none run.
fn curve_point(
    mode: CompressionMode,
    reference_accuracy: f64,
    masked_frame_bytes: usize,
) -> ModePoint {
    let compression = CompressionConfig {
        mode,
        ..CompressionConfig::default()
    };
    let mut env = make_env(compression);
    let (run, final_accuracy, final_loss) = run_report(
        compression.mode.as_str(),
        &mut HeliosStrategy::new(HeliosConfig::default()),
        &mut env,
    );
    let straggler_frame = env
        .client(CAPABLE)
        .expect("straggler client")
        .upload_wire_size_with(&compression)
        .total_bytes();
    let total_upload_bytes = run.devices.iter().map(|d| d.upload_bytes).sum();
    ModePoint {
        mode: compression.mode.as_str().to_string(),
        lossless: compression.mode.is_lossless(),
        accuracy_tolerance: mode_tolerance(mode),
        final_accuracy,
        final_loss,
        accuracy_delta_vs_reference: final_accuracy - reference_accuracy,
        straggler_upload_frame_bytes: straggler_frame,
        bytes_vs_masked_ratio: straggler_frame as f64 / masked_frame_bytes as f64,
        total_upload_bytes,
    }
}

fn main() {
    // Zero the process-global host accumulators so the two runs below
    // are measured from a clean slate.
    let _host = helios_nn::HostMetricsScope::enter();
    let mut sync_env = make_env(CompressionConfig::default());
    let mut helios_env = make_env(CompressionConfig::default());
    let param_count = sync_env.global().len();
    let full_frame_bytes = WireSize::full(param_count).total_bytes();

    let (sync_run, _, _) = run_report("sync_fedavg_full", &mut SyncFedAvg::new(), &mut sync_env);
    let (helios_run, helios_acc, helios_loss) = run_report(
        "helios_soft_trained",
        &mut HeliosStrategy::new(HeliosConfig::default()),
        &mut helios_env,
    );
    // The v1 masked layout a straggler settles on — the byte baseline
    // every v2 mode is measured against.
    let masked_frame_bytes = helios_env
        .client(CAPABLE)
        .expect("straggler client")
        .upload_wire_size()
        .total_bytes();

    println!("Simulated network — full vs soft-trained exchange ({CYCLES} cycles)");
    for run in [&sync_run, &helios_run] {
        println!(
            "{:<22} sim_time {:>8.2}s  wire {:>9} B  retries {:>3}  corrupt {:>3}  \
             timeouts {:>2}  failures {:>2}",
            run.strategy,
            run.total_sim_time_s,
            run.bytes_on_wire,
            run.retries,
            run.corruptions_detected,
            run.timeouts,
            run.failures,
        );
        for d in &run.devices {
            println!(
                "  client {} ({}) up {:>9} B  down {:>9} B  frame {:>7} B  retries {:>2}  missed {}",
                d.client,
                if d.straggler { "straggler" } else { "capable " },
                d.upload_bytes,
                d.download_bytes,
                d.upload_frame_bytes,
                d.retries,
                d.missed_cycles,
            );
        }
    }

    // Wire-v2 accuracy-vs-bytes curve: the mode-none Helios run above is
    // the reference point; each v2 mode reruns the same seeded workload.
    let mut compression_curve = vec![ModePoint {
        mode: CompressionMode::None.as_str().to_string(),
        lossless: true,
        accuracy_tolerance: 0.0,
        final_accuracy: helios_acc,
        final_loss: helios_loss,
        accuracy_delta_vs_reference: 0.0,
        straggler_upload_frame_bytes: masked_frame_bytes,
        bytes_vs_masked_ratio: 1.0,
        total_upload_bytes: helios_run.devices.iter().map(|d| d.upload_bytes).sum(),
    }];
    for mode in [
        CompressionMode::Delta,
        CompressionMode::TopK,
        CompressionMode::QuantF16,
        CompressionMode::QuantInt8,
    ] {
        compression_curve.push(curve_point(mode, helios_acc, masked_frame_bytes));
    }

    println!("\naccuracy-vs-bytes tradeoff (helios workload, straggler upload frame):");
    for p in &compression_curve {
        println!(
            "  {:<6} frame {:>7} B  ({:>5.1}% of masked)  acc {:.3}  Δacc {:+.3}  loss {:.3}",
            p.mode,
            p.straggler_upload_frame_bytes,
            p.bytes_vs_masked_ratio * 100.0,
            p.final_accuracy,
            p.accuracy_delta_vs_reference,
            p.final_loss,
        );
    }

    let report = NetBenchReport {
        seed: SEED,
        cycles: CYCLES,
        param_count,
        full_frame_bytes,
        runs: vec![sync_run, helios_run],
        compression_curve,
    };
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("results dir");
    let path = dir.join("BENCH_net.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&report).expect("serialize"),
    )
    .expect("write report");
    println!("\nwrote {}", path.display());

    // Self-check against the artifact we just wrote: parse it back and
    // verify the headline claim — a soft-trained straggler's upload
    // frame is smaller than the full-model frame.
    let parsed: NetBenchReport =
        serde_json::from_str(&std::fs::read_to_string(&path).expect("read back"))
            .expect("BENCH_net.json must parse");
    let helios = parsed
        .runs
        .iter()
        .find(|r| r.strategy == "helios_soft_trained")
        .expect("helios run present");
    let mut ok = true;
    for d in helios.devices.iter().filter(|d| d.straggler) {
        let smaller = d.upload_frame_bytes < parsed.full_frame_bytes;
        println!(
            "check: straggler {} frame {} B < full {} B — {}",
            d.client,
            d.upload_frame_bytes,
            parsed.full_frame_bytes,
            if smaller { "ok" } else { "FAIL" }
        );
        ok &= smaller;
    }

    // Wire-v2 curve checks: lossless modes must sit on the reference
    // (zero accuracy delta, never above the masked frame size); lossy
    // modes must strictly shrink the straggler upload while staying
    // inside their accuracy tolerance.
    for p in &parsed.compression_curve {
        if p.mode == "none" {
            continue;
        }
        let (bytes_ok, acc_ok) = if p.lossless {
            (
                p.bytes_vs_masked_ratio <= 1.0,
                p.accuracy_delta_vs_reference == 0.0,
            )
        } else {
            (
                p.bytes_vs_masked_ratio < 1.0,
                p.accuracy_delta_vs_reference.abs() <= p.accuracy_tolerance,
            )
        };
        println!(
            "check: mode {} bytes ratio {:.3} — {}; Δacc {:+.3} within ±{:.2} — {}",
            p.mode,
            p.bytes_vs_masked_ratio,
            if bytes_ok { "ok" } else { "FAIL" },
            p.accuracy_delta_vs_reference,
            p.accuracy_tolerance,
            if acc_ok { "ok" } else { "FAIL" },
        );
        ok &= bytes_ok && acc_ok;
    }

    if !ok {
        eprintln!("wire-size / compression-curve checks failed");
        std::process::exit(1);
    }
}
