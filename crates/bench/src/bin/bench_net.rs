//! **BENCH_net** — simulated-network cost of a federated round.
//!
//! Runs the same mixed fleet twice through the simulated transport with
//! constrained straggler links and mild fault injection: once under
//! synchronous FedAvg (every device uploads the full model) and once
//! under Helios (stragglers soft-train and upload the compact masked
//! wire layout). Writes `results/BENCH_net.json` with per-device bytes
//! on the wire, retry/timeout counts, and round times, then re-parses
//! its own output and asserts that every straggler's upload frame is
//! genuinely smaller than the full-model frame — exiting nonzero
//! otherwise.

use helios_bench::results_dir;
use helios_core::{HeliosConfig, HeliosStrategy};
use helios_data::{partition, Dataset, SyntheticVision};
use helios_device::presets;
use helios_fl::{
    FaultConfig, FlConfig, FlEnv, LinkProfile, NetConfig, Strategy, SyncFedAvg, WireSize,
};
use helios_nn::models::ModelKind;
use helios_tensor::TensorRng;
use serde::{Deserialize, Serialize};

const SEED: u64 = 42;
const CYCLES: usize = 3;
const CAPABLE: usize = 2;
const STRAGGLERS: usize = 2;

/// Capable devices sit behind a fast, low-latency link.
const CAPABLE_LINK: LinkProfile = LinkProfile::constrained(50e6, 0.01);
/// Stragglers get the paper's constrained edge uplink, with jitter.
const STRAGGLER_LINK: LinkProfile = LinkProfile::constrained(2e6, 0.05).with_jitter(0.01);

#[derive(Debug, Serialize, Deserialize)]
struct DeviceReport {
    client: usize,
    straggler: bool,
    upload_bytes: u64,
    download_bytes: u64,
    retries: u64,
    missed_cycles: u64,
    /// Size of one upload frame under this device's final mask state.
    upload_frame_bytes: usize,
}

#[derive(Debug, Serialize, Deserialize)]
struct RunReport {
    strategy: String,
    cycles: usize,
    total_sim_time_s: f64,
    bytes_on_wire: u64,
    delivered_bytes: u64,
    retries: u64,
    corruptions_detected: u64,
    timeouts: u64,
    failures: u64,
    devices: Vec<DeviceReport>,
}

#[derive(Debug, Serialize, Deserialize)]
struct NetBenchReport {
    seed: u64,
    cycles: usize,
    param_count: usize,
    /// Wire size of one full-model frame — the baseline every masked
    /// upload is compared against.
    full_frame_bytes: usize,
    runs: Vec<RunReport>,
}

fn make_env() -> FlEnv {
    let clients = CAPABLE + STRAGGLERS;
    let mut rng = TensorRng::seed_from(SEED);
    let (train, test) = SyntheticVision::mnist_like()
        .generate(40 * clients, 40, &mut rng)
        .expect("dataset");
    let shards: Vec<Dataset> = partition::iid(train.len(), clients, &mut rng)
        .into_iter()
        .map(|idx| train.subset(&idx).expect("subset"))
        .collect();
    let mut env = FlEnv::new(
        ModelKind::LeNet,
        presets::mixed_fleet(CAPABLE, STRAGGLERS),
        shards,
        test,
        FlConfig {
            seed: SEED,
            net: NetConfig {
                enabled: true,
                link: CAPABLE_LINK,
                faults: FaultConfig {
                    drop_prob: 0.05,
                    corrupt_prob: 0.05,
                    delay_prob: 0.10,
                    max_extra_delay_s: 0.25,
                },
                ..NetConfig::default()
            },
            ..FlConfig::default()
        },
    )
    .expect("env");
    // mixed_fleet puts capable devices first, stragglers after.
    for i in CAPABLE..clients {
        env.set_link(i, STRAGGLER_LINK).expect("set_link");
    }
    env
}

fn run_report(name: &str, strategy: &mut dyn Strategy, env: &mut FlEnv) -> RunReport {
    let metrics = strategy.run(env, CYCLES).expect("strategy run");
    let transport = env.transport().expect("networking enabled");
    let stats = *transport.stats();
    let devices = (0..transport.num_devices())
        .map(|i| {
            let d = transport.device_stats(i);
            DeviceReport {
                client: i,
                straggler: i >= CAPABLE,
                upload_bytes: d.upload_bytes,
                download_bytes: d.download_bytes,
                retries: d.retries,
                missed_cycles: d.missed_cycles,
                upload_frame_bytes: env
                    .client(i)
                    .expect("client")
                    .upload_wire_size()
                    .total_bytes(),
            }
        })
        .collect();
    RunReport {
        strategy: name.to_string(),
        cycles: metrics.records().len(),
        total_sim_time_s: metrics.total_time().as_secs_f64(),
        bytes_on_wire: stats.bytes_on_wire,
        delivered_bytes: stats.delivered_bytes,
        retries: stats.retries,
        corruptions_detected: stats.corruptions_detected,
        timeouts: stats.timeouts,
        failures: stats.failures,
        devices,
    }
}

fn main() {
    // Zero the process-global host accumulators so the two runs below
    // are measured from a clean slate.
    let _host = helios_nn::HostMetricsScope::enter();
    let mut sync_env = make_env();
    let mut helios_env = make_env();
    let param_count = sync_env.global().len();
    let full_frame_bytes = WireSize::full(param_count).total_bytes();

    let sync_run = run_report("sync_fedavg_full", &mut SyncFedAvg::new(), &mut sync_env);
    let helios_run = run_report(
        "helios_soft_trained",
        &mut HeliosStrategy::new(HeliosConfig::default()),
        &mut helios_env,
    );

    println!("Simulated network — full vs soft-trained exchange ({CYCLES} cycles)");
    for run in [&sync_run, &helios_run] {
        println!(
            "{:<22} sim_time {:>8.2}s  wire {:>9} B  retries {:>3}  corrupt {:>3}  \
             timeouts {:>2}  failures {:>2}",
            run.strategy,
            run.total_sim_time_s,
            run.bytes_on_wire,
            run.retries,
            run.corruptions_detected,
            run.timeouts,
            run.failures,
        );
        for d in &run.devices {
            println!(
                "  client {} ({}) up {:>9} B  down {:>9} B  frame {:>7} B  retries {:>2}  missed {}",
                d.client,
                if d.straggler { "straggler" } else { "capable " },
                d.upload_bytes,
                d.download_bytes,
                d.upload_frame_bytes,
                d.retries,
                d.missed_cycles,
            );
        }
    }

    let report = NetBenchReport {
        seed: SEED,
        cycles: CYCLES,
        param_count,
        full_frame_bytes,
        runs: vec![sync_run, helios_run],
    };
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("results dir");
    let path = dir.join("BENCH_net.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&report).expect("serialize"),
    )
    .expect("write report");
    println!("\nwrote {}", path.display());

    // Self-check against the artifact we just wrote: parse it back and
    // verify the headline claim — a soft-trained straggler's upload
    // frame is smaller than the full-model frame.
    let parsed: NetBenchReport =
        serde_json::from_str(&std::fs::read_to_string(&path).expect("read back"))
            .expect("BENCH_net.json must parse");
    let helios = parsed
        .runs
        .iter()
        .find(|r| r.strategy == "helios_soft_trained")
        .expect("helios run present");
    let mut ok = true;
    for d in helios.devices.iter().filter(|d| d.straggler) {
        let smaller = d.upload_frame_bytes < parsed.full_frame_bytes;
        println!(
            "check: straggler {} frame {} B < full {} B — {}",
            d.client,
            d.upload_frame_bytes,
            parsed.full_frame_bytes,
            if smaller { "ok" } else { "FAIL" }
        );
        ok &= smaller;
    }
    if !ok {
        eprintln!("straggler wire size check failed");
        std::process::exit(1);
    }
}
