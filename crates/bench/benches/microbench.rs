//! Criterion micro-benchmarks.
//!
//! `neuron_selection` reproduces the paper's §V footnote: the sorting
//! overhead of contribution-guided selection must be negligible next to a
//! training step (paper: 18 ms vs 12 min on-device; here both shrink with
//! the model scale but the *ratio* must stay extreme). The other groups
//! cover the hot paths of the simulation: convolution, masked vs full
//! training steps, and masked aggregation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use helios_core::softtrain::select_layer_mask;
use helios_fl::{aggregate, MaskedUpdate};
use helios_nn::{models, CrossEntropyLoss, ModelMask, Sgd};
use helios_tensor::{conv2d, uniform_init, ConvSpec, Tensor, TensorRng};
use std::hint::black_box;

fn neuron_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("neuron_selection");
    for &n in &[1024usize, 8192, 65536] {
        let mut rng = TensorRng::seed_from(1);
        let contributions: Vec<f32> = (0..n).map(|_| rng.uniform(0.0, 1.0)).collect();
        let k = n / 8;
        let top = k / 10;
        group.bench_function(format!("select_{n}_neurons"), |b| {
            b.iter_batched(
                || TensorRng::seed_from(2),
                |mut rng| {
                    black_box(select_layer_mask(
                        black_box(&contributions),
                        k,
                        top,
                        &[],
                        &mut rng,
                    ))
                },
                BatchSize::SmallInput,
            )
        });
    }
    // The training step the selection overhead is compared against
    // (§V footnote's "18 ms vs 12 min" ratio check).
    let mut rng = TensorRng::seed_from(3);
    let mut net = models::alexnet(10, &mut rng);
    let x = uniform_init(&[16, 3, 16, 16], -1.0, 1.0, &mut rng);
    let labels: Vec<usize> = (0..16).map(|i| i % 10).collect();
    let loss = CrossEntropyLoss::new();
    let mut opt = Sgd::new(0.01);
    group.bench_function("training_step_alexnet_batch16", |b| {
        b.iter(|| {
            net.zero_grad();
            let logits = net.forward(black_box(&x)).expect("forward");
            let (_, g) = loss.forward_backward(&logits, &labels).expect("loss");
            net.backward(&g).expect("backward");
            opt.step(&mut net).expect("step");
        })
    });
    group.finish();
}

fn convolution(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv2d");
    let mut rng = TensorRng::seed_from(4);
    for &(ch_in, ch_out) in &[(3usize, 16usize), (16, 32)] {
        let spec = ConvSpec::new(ch_in, ch_out, 3, 1, 1);
        let x = uniform_init(&[16, ch_in, 16, 16], -1.0, 1.0, &mut rng);
        let w = uniform_init(&spec.weight_dims(), -1.0, 1.0, &mut rng);
        let bias = Tensor::zeros(&[ch_out]);
        group.bench_function(format!("forward_{ch_in}to{ch_out}_16x16_b16"), |b| {
            b.iter(|| black_box(conv2d(black_box(&x), &w, &bias, &spec).expect("conv")))
        });
    }
    group.finish();
}

fn masked_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("masked_vs_full_step");
    let loss = CrossEntropyLoss::new();
    let labels: Vec<usize> = (0..16).map(|i| i % 10).collect();
    for &(label, keep) in &[("full", 1.0f64), ("half", 0.5), ("quarter", 0.25)] {
        let mut rng = TensorRng::seed_from(5);
        let mut net = models::lenet(10, &mut rng);
        let units = net.maskable_units();
        if keep < 1.0 {
            let mut mask = ModelMask::all_active(&units);
            for (i, &n) in units.0.iter().enumerate() {
                let cut = ((keep * n as f64).ceil() as usize).max(1);
                mask.set_layer(i, Some((0..n).map(|j| j < cut).collect()));
            }
            net.set_masks(&mask).expect("mask fits");
        }
        let x = uniform_init(&[16, 1, 16, 16], -1.0, 1.0, &mut rng);
        let mut opt = Sgd::new(0.01);
        group.bench_function(format!("lenet_{label}"), |b| {
            b.iter(|| {
                net.zero_grad();
                let logits = net.forward(black_box(&x)).expect("forward");
                let (_, g) = loss.forward_backward(&logits, &labels).expect("loss");
                net.backward(&g).expect("backward");
                opt.step(&mut net).expect("step");
            })
        });
    }
    group.finish();
}

fn masked_aggregation(c: &mut Criterion) {
    let mut group = c.benchmark_group("aggregate");
    let n = 100_000usize;
    let mut rng = TensorRng::seed_from(6);
    let updates: Vec<Vec<f32>> = (0..4)
        .map(|_| (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect())
        .collect();
    let masks: Vec<Vec<bool>> = (0..4)
        .map(|i| (0..n).map(|j| (j + i) % 2 == 0).collect())
        .collect();
    group.bench_function("4_clients_100k_params_unmasked", |b| {
        b.iter_batched(
            || vec![0.0f32; n],
            |mut global| {
                let views: Vec<MaskedUpdate<'_>> = updates
                    .iter()
                    .map(|u| MaskedUpdate {
                        params: u,
                        param_mask: None,
                        weight: 1.0,
                    })
                    .collect();
                aggregate(&mut global, &views);
                black_box(global)
            },
            BatchSize::LargeInput,
        )
    });
    group.bench_function("4_clients_100k_params_masked", |b| {
        b.iter_batched(
            || vec![0.0f32; n],
            |mut global| {
                let views: Vec<MaskedUpdate<'_>> = updates
                    .iter()
                    .zip(&masks)
                    .map(|(u, m)| MaskedUpdate {
                        params: u,
                        param_mask: Some(m),
                        weight: 1.0,
                    })
                    .collect();
                aggregate(&mut global, &views);
                black_box(global)
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = neuron_selection, convolution, masked_training, masked_aggregation
}
criterion_main!(benches);
