//! Declarative scenario timelines for the Helios simulator.
//!
//! A [`ScenarioConfig`] describes, from configuration alone, how a
//! federated fleet evolves over simulated time: device churn
//! (join/leave/return), diurnal availability waves, battery/thermal
//! throttling curves, and label/concept drift. The config is pure data:
//! `helios-fl` compiles it into a [`Schedule`] and applies the events at
//! fixed hook points in the round driver, so every effect is a pure
//! function of `(config, seed, device, cycle)` and runs replay bitwise
//! at any thread width.
//!
//! This crate deliberately depends on nothing but `serde`: it owns the
//! vocabulary and the math (wave shapes, decay curves, schedule
//! compilation and validation) and leaves application to the engine.
//! An empty scenario — the [`Default`] — compiles to an empty schedule
//! and must leave the engine's behavior bit-identical to a build
//! without any scenario support.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Error raised when a scenario timeline is internally inconsistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError {
    /// Human-readable description of the inconsistency.
    pub what: String,
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid scenario: {}", self.what)
    }
}

impl std::error::Error for ScenarioError {}

fn invalid(what: impl Into<String>) -> ScenarioError {
    ScenarioError { what: what.into() }
}

fn one() -> usize {
    1
}

fn default_true() -> bool {
    true
}

fn default_floor() -> f64 {
    0.1
}

fn default_phase_spread() -> f64 {
    1.0
}

/// What a [`ChurnEvent`] does to the enrolled population.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChurnAction {
    /// Enroll `count` brand-new devices at the end of the population.
    Join,
    /// Take an existing device offline (it stops being sampled).
    Leave,
    /// Bring a previously departed device back online.
    Return,
}

/// A single discrete churn event on the fleet timeline.
///
/// `device` is only meaningful for [`ChurnAction::Leave`] and
/// [`ChurnAction::Return`]; `count` only for [`ChurnAction::Join`].
/// Both default so JSON configs spell only the fields their action
/// uses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnEvent {
    /// Cycle at whose start the event fires.
    pub cycle: usize,
    /// Join, leave, or return.
    pub action: ChurnAction,
    /// Target device for `Leave` / `Return` (ignored for `Join`).
    #[serde(default)]
    pub device: usize,
    /// Number of devices appended for `Join` (ignored otherwise).
    #[serde(default = "one")]
    pub count: usize,
}

/// A monotone battery/thermal degradation curve.
///
/// From `start_cycle` on, the affected device's effective compute
/// throughput (and, independently, its uplink/downlink bandwidth) is
/// scaled by `max(floor, 1 - decay * (cycle - start_cycle))`: full
/// speed at onset, then a linear ramp down to a hard floor. Several
/// rules touching the same device multiply.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThrottleRule {
    /// First cycle at which the rule takes effect.
    pub start_cycle: usize,
    /// Affected device; `None` throttles the whole fleet.
    #[serde(default)]
    pub device: Option<usize>,
    /// Per-cycle linear decay of compute throughput (`0` disables).
    #[serde(default)]
    pub compute_decay: f64,
    /// Per-cycle linear decay of link bandwidth (`0` disables).
    #[serde(default)]
    pub bandwidth_decay: f64,
    /// Lower bound the scale never drops below.
    #[serde(default = "default_floor")]
    pub floor: f64,
}

impl ThrottleRule {
    fn ramp(&self, decay: f64, cycle: usize) -> f64 {
        if cycle < self.start_cycle || decay <= 0.0 {
            return 1.0;
        }
        let elapsed = (cycle - self.start_cycle) as f64;
        (1.0 - decay * elapsed).max(self.floor)
    }

    /// Compute-throughput scale in `[floor, 1]` at `cycle`.
    #[must_use]
    pub fn compute_scale(&self, cycle: usize) -> f64 {
        self.ramp(self.compute_decay, cycle)
    }

    /// Link-bandwidth scale in `[floor, 1]` at `cycle`.
    #[must_use]
    pub fn bandwidth_scale(&self, cycle: usize) -> f64 {
        self.ramp(self.bandwidth_decay, cycle)
    }

    /// Whether the rule affects `device`.
    #[must_use]
    pub fn applies_to(&self, device: usize) -> bool {
        self.device.is_none_or(|d| d == device)
    }

    /// Whether the rule has begun by `cycle`.
    #[must_use]
    pub fn active_at(&self, cycle: usize) -> bool {
        cycle >= self.start_cycle
    }
}

/// A scheduled link outage: the affected device's (or the whole
/// fleet's) simulated transport bandwidth collapses to a near-zero
/// trickle for every cycle in `[from_cycle, until_cycle)`, then
/// restores to the device's scenario-scaled profile. Outages model
/// backhaul failures and tunnels-without-coverage — the device still
/// *trains*, it just cannot move bytes at any useful rate, so the
/// round driver's straggler policies see it as an extreme laggard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutageWindow {
    /// First cycle of the outage (inclusive).
    pub from_cycle: usize,
    /// First cycle after the outage (exclusive).
    pub until_cycle: usize,
    /// Affected device; `None` blacks out the whole fleet.
    #[serde(default)]
    pub device: Option<usize>,
}

impl OutageWindow {
    /// Whether the outage is in force at `cycle`.
    #[must_use]
    pub fn contains(&self, cycle: usize) -> bool {
        (self.from_cycle..self.until_cycle).contains(&cycle)
    }

    /// Whether the window affects `device`.
    #[must_use]
    pub fn applies_to(&self, device: usize) -> bool {
        self.device.is_none_or(|d| d == device)
    }
}

/// Which statistical property of the data a [`DriftEvent`] shifts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DriftKind {
    /// Rotate every label by `round(amount)` class positions (mod the
    /// class count) — abrupt concept drift.
    LabelRotate,
    /// Add `amount` to every input pixel — gradual covariate shift.
    InputShift,
}

impl DriftKind {
    /// Stable identifier used in trace events.
    #[must_use]
    pub fn trace_kind(&self) -> &'static str {
        match self {
            DriftKind::LabelRotate => "drift_label_rotate",
            DriftKind::InputShift => "drift_input_shift",
        }
    }
}

/// A scheduled shift in the data distribution.
///
/// Drift events apply cumulatively and in timeline order: a client that
/// joins (or is re-materialized) late replays every event up to the
/// current cycle one at a time, so lazily and eagerly instantiated
/// fleets see bit-identical shards.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftEvent {
    /// Cycle at whose start the shift fires.
    pub cycle: usize,
    /// Label rotation or input shift.
    pub kind: DriftKind,
    /// Magnitude (class positions for rotation, pixel offset for shift).
    pub amount: f64,
}

/// A diurnal availability wave: per-device phase-shifted sinusoid that
/// modulates the availability weight over simulated time.
///
/// The wave is pure math over a *unit phase* in `[0, 1)` that the
/// engine derives per device from the run seed, so the crate stays
/// dependency-free while the composed availability remains a pure
/// function of `(base_seed, device, cycle)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiurnalWave {
    /// Length of one day in cycles.
    pub period_cycles: usize,
    /// Trough of the wave (`0` = fully unavailable at night).
    #[serde(default)]
    pub min_scale: f64,
    /// How much of a full period device phases spread over (`1` =
    /// devices are staggered across the whole day, `0` = all in sync).
    #[serde(default = "default_phase_spread")]
    pub phase_spread: f64,
}

impl DiurnalWave {
    /// Wave scale in `[min_scale, 1]` for a device with the given unit
    /// phase at `cycle`. Pure in `(unit_phase, cycle)`.
    #[must_use]
    pub fn scale(&self, unit_phase: f64, cycle: usize) -> f64 {
        let period = self.period_cycles.max(1);
        // Reduce modulo the period in integers so the wave is *exactly*
        // periodic in floating point, not just mathematically.
        let pos = (cycle % period) as f64 / period as f64;
        let phase = unit_phase * self.phase_spread;
        let s = 0.5 * (1.0 + (std::f64::consts::TAU * (pos + phase)).sin());
        self.min_scale + (1.0 - self.min_scale) * s
    }
}

/// A declarative scenario timeline, carried on
/// `helios_fl::FlConfig::scenario` behind `#[serde(default)]` so
/// existing configuration files still load (empty scenario, engine
/// behavior bit-identical to a static fleet).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Discrete join/leave/return events.
    #[serde(default)]
    pub churn: Vec<ChurnEvent>,
    /// Optional diurnal availability wave over the whole fleet.
    #[serde(default)]
    pub diurnal: Option<DiurnalWave>,
    /// Battery/thermal throttling curves.
    #[serde(default)]
    pub throttle: Vec<ThrottleRule>,
    /// Scheduled link-outage windows.
    #[serde(default)]
    pub outages: Vec<OutageWindow>,
    /// Scheduled label/concept drift events.
    #[serde(default)]
    pub drift: Vec<DriftEvent>,
    /// When `true` (the default), drift also rewrites the held-out test
    /// set at fire time, modeling a world that changed under everyone.
    #[serde(default = "default_true")]
    pub drift_test_set: bool,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            churn: Vec::new(),
            diurnal: None,
            throttle: Vec::new(),
            outages: Vec::new(),
            drift: Vec::new(),
            drift_test_set: true,
        }
    }
}

impl ScenarioConfig {
    /// `true` when the scenario changes nothing — the engine must then
    /// skip runtime construction entirely.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.churn.is_empty()
            && self.diurnal.is_none()
            && self.throttle.is_empty()
            && self.outages.is_empty()
            && self.drift.is_empty()
    }

    /// Compiles the timeline into a deterministic [`Schedule`]: one
    /// entry per discrete event, sorted by `(cycle, source order)`.
    /// Pure in `self`; identical configs compile to identical
    /// schedules.
    #[must_use]
    pub fn compile(&self) -> Schedule {
        let mut events = Vec::with_capacity(self.churn.len() + self.drift.len());
        for (i, ev) in self.churn.iter().enumerate() {
            let kind = match ev.action {
                ChurnAction::Join => EventKind::Join { count: ev.count },
                ChurnAction::Leave => EventKind::Leave { device: ev.device },
                ChurnAction::Return => EventKind::Return { device: ev.device },
            };
            events.push(ScheduledEvent {
                cycle: ev.cycle,
                seq: i,
                kind,
            });
        }
        for (i, ev) in self.drift.iter().enumerate() {
            events.push(ScheduledEvent {
                cycle: ev.cycle,
                seq: self.churn.len() + i,
                kind: EventKind::Drift {
                    kind: ev.kind,
                    amount: ev.amount,
                },
            });
        }
        events.sort_by_key(|e| (e.cycle, e.seq));
        Schedule { events }
    }

    /// Population size at the start of `cycle`, after all joins with
    /// `cycle <= cycle` have fired.
    #[must_use]
    pub fn population_at(&self, initial_population: usize, cycle: usize) -> usize {
        let joined: usize = self
            .churn
            .iter()
            .filter(|e| e.action == ChurnAction::Join && e.cycle <= cycle)
            .map(|e| e.count)
            .sum();
        initial_population + joined
    }

    /// Checks the timeline against an initial population: every leave /
    /// return targets a device that exists (and is in the right online
    /// state) at event time, joins enroll at least one device, decay
    /// curves and wave parameters are in range.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError`] describing the first inconsistency in
    /// schedule order.
    pub fn validate(&self, initial_population: usize) -> Result<(), ScenarioError> {
        if let Some(w) = &self.diurnal {
            if w.period_cycles == 0 {
                return Err(invalid("diurnal period_cycles must be >= 1"));
            }
            if !(0.0..=1.0).contains(&w.min_scale) {
                return Err(invalid(format!(
                    "diurnal min_scale must be in [0, 1], got {}",
                    w.min_scale
                )));
            }
            if !(0.0..=1.0).contains(&w.phase_spread) {
                return Err(invalid(format!(
                    "diurnal phase_spread must be in [0, 1], got {}",
                    w.phase_spread
                )));
            }
        }
        for (i, r) in self.throttle.iter().enumerate() {
            if !(0.0..=1.0).contains(&r.compute_decay) || !(0.0..=1.0).contains(&r.bandwidth_decay)
            {
                return Err(invalid(format!(
                    "throttle rule {i}: decays must be in [0, 1]"
                )));
            }
            if !(r.floor > 0.0 && r.floor <= 1.0) {
                return Err(invalid(format!(
                    "throttle rule {i}: floor must be in (0, 1], got {}",
                    r.floor
                )));
            }
            if let Some(d) = r.device {
                if d >= self.population_at(initial_population, r.start_cycle) {
                    return Err(invalid(format!(
                        "throttle rule {i}: device {d} does not exist at cycle {}",
                        r.start_cycle
                    )));
                }
            }
        }
        for (i, o) in self.outages.iter().enumerate() {
            if o.until_cycle <= o.from_cycle {
                return Err(invalid(format!(
                    "outage {i}: window [{}, {}) is empty",
                    o.from_cycle, o.until_cycle
                )));
            }
            if let Some(d) = o.device {
                if d >= self.population_at(initial_population, o.from_cycle) {
                    return Err(invalid(format!(
                        "outage {i}: device {d} does not exist at cycle {}",
                        o.from_cycle
                    )));
                }
            }
        }
        for (i, ev) in self.drift.iter().enumerate() {
            if !ev.amount.is_finite() {
                return Err(invalid(format!("drift event {i}: amount must be finite")));
            }
        }

        // Replay the compiled churn timeline tracking population growth
        // and the offline set, exactly as the engine will.
        let mut population = initial_population;
        let mut offline: BTreeSet<usize> = BTreeSet::new();
        for ev in self.compile().events() {
            match ev.kind {
                EventKind::Join { count } => {
                    if count == 0 {
                        return Err(invalid(format!(
                            "churn at cycle {}: join count must be >= 1",
                            ev.cycle
                        )));
                    }
                    population += count;
                }
                EventKind::Leave { device } => {
                    if device >= population {
                        return Err(invalid(format!(
                            "churn at cycle {}: leave targets device {device} but only {population} exist",
                            ev.cycle
                        )));
                    }
                    if !offline.insert(device) {
                        return Err(invalid(format!(
                            "churn at cycle {}: device {device} is already offline",
                            ev.cycle
                        )));
                    }
                }
                EventKind::Return { device } => {
                    if !offline.remove(&device) {
                        return Err(invalid(format!(
                            "churn at cycle {}: device {device} returns but never left",
                            ev.cycle
                        )));
                    }
                }
                EventKind::Drift { .. } => {}
            }
        }
        Ok(())
    }
}

/// One compiled timeline entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduledEvent {
    /// Cycle at whose start the event fires.
    pub cycle: usize,
    /// Stable source-order tie-break within a cycle.
    pub seq: usize,
    /// What happens.
    pub kind: EventKind,
}

/// Payload of a [`ScheduledEvent`]. Internal engine vocabulary — not
/// serialized, so it may carry data unlike the serde-facing config
/// enums.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// Enroll `count` new devices.
    Join {
        /// Number of devices appended to the population.
        count: usize,
    },
    /// Take `device` offline.
    Leave {
        /// Target device.
        device: usize,
    },
    /// Bring `device` back online.
    Return {
        /// Target device.
        device: usize,
    },
    /// Shift the data distribution.
    Drift {
        /// Label rotation or input shift.
        kind: DriftKind,
        /// Magnitude.
        amount: f64,
    },
}

/// A compiled, deterministic event schedule: discrete events sorted by
/// `(cycle, source order)`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schedule {
    events: Vec<ScheduledEvent>,
}

impl Schedule {
    /// All events in firing order.
    #[must_use]
    pub fn events(&self) -> &[ScheduledEvent] {
        &self.events
    }

    /// Events firing exactly at `cycle`.
    #[must_use]
    pub fn events_at(&self, cycle: usize) -> &[ScheduledEvent] {
        let lo = self.events.partition_point(|e| e.cycle < cycle);
        let hi = self.events.partition_point(|e| e.cycle <= cycle);
        &self.events[lo..hi]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn join(cycle: usize, count: usize) -> ChurnEvent {
        ChurnEvent {
            cycle,
            action: ChurnAction::Join,
            device: 0,
            count,
        }
    }

    fn leave(cycle: usize, device: usize) -> ChurnEvent {
        ChurnEvent {
            cycle,
            action: ChurnAction::Leave,
            device,
            count: 1,
        }
    }

    fn ret(cycle: usize, device: usize) -> ChurnEvent {
        ChurnEvent {
            cycle,
            action: ChurnAction::Return,
            device,
            count: 1,
        }
    }

    #[test]
    fn default_scenario_is_empty_and_valid() {
        let s = ScenarioConfig::default();
        assert!(s.is_empty());
        assert!(s.drift_test_set);
        assert!(s.validate(0).is_ok());
        assert!(s.compile().events().is_empty());
    }

    #[test]
    fn config_round_trips_through_json_with_defaults() {
        let text = r#"{
            "churn": [
                {"cycle": 1, "action": "Join", "count": 2},
                {"cycle": 2, "action": "Leave", "device": 0}
            ],
            "diurnal": {"period_cycles": 8},
            "throttle": [{"start_cycle": 1, "compute_decay": 0.2}],
            "drift": [{"cycle": 3, "kind": "LabelRotate", "amount": 1.0}]
        }"#;
        let s: ScenarioConfig = serde_json::from_str(text).unwrap();
        assert_eq!(s.churn.len(), 2);
        assert_eq!(s.churn[0].count, 2);
        assert_eq!(s.churn[1].device, 0);
        assert_eq!(s.churn[1].count, 1, "count defaults to 1");
        let wave = s.diurnal.unwrap();
        assert_eq!(wave.period_cycles, 8);
        assert_eq!(wave.phase_spread, 1.0, "phase_spread defaults to 1");
        assert_eq!(s.throttle[0].floor, 0.1, "floor defaults to 0.1");
        assert!(s.throttle[0].device.is_none());
        assert!(s.drift_test_set, "drift_test_set defaults to true");
        let echo: ScenarioConfig =
            serde_json::from_str(&serde_json::to_string(&s).unwrap()).unwrap();
        assert_eq!(echo, s);
    }

    #[test]
    fn empty_json_object_is_default() {
        let s: ScenarioConfig = serde_json::from_str("{}").unwrap();
        assert_eq!(s, ScenarioConfig::default());
    }

    #[test]
    fn compile_sorts_by_cycle_with_stable_source_order() {
        let s = ScenarioConfig {
            churn: vec![join(5, 1), leave(1, 0), join(1, 2)],
            drift: vec![DriftEvent {
                cycle: 1,
                kind: DriftKind::InputShift,
                amount: 0.1,
            }],
            ..ScenarioConfig::default()
        };
        let schedule = s.compile();
        let cycles: Vec<usize> = schedule.events().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![1, 1, 1, 5]);
        // Within cycle 1: churn events in source order, then drift.
        assert_eq!(
            schedule.events()[0].kind,
            EventKind::Leave { device: 0 },
            "source order preserved within a cycle"
        );
        assert_eq!(schedule.events()[1].kind, EventKind::Join { count: 2 });
        assert!(matches!(schedule.events()[2].kind, EventKind::Drift { .. }));
        assert_eq!(schedule.events_at(1).len(), 3);
        assert_eq!(schedule.events_at(5).len(), 1);
        assert!(schedule.events_at(2).is_empty());
        // Compilation is deterministic.
        assert_eq!(s.compile(), schedule);
    }

    #[test]
    fn validate_tracks_population_growth_and_offline_state() {
        // Device 10 only exists after the cycle-2 join of 8 devices.
        let s = ScenarioConfig {
            churn: vec![join(2, 8), leave(3, 10), ret(5, 10)],
            ..ScenarioConfig::default()
        };
        assert!(s.validate(4).is_ok());
        assert_eq!(s.population_at(4, 1), 4);
        assert_eq!(s.population_at(4, 2), 12);

        let early = ScenarioConfig {
            churn: vec![leave(0, 10)],
            ..ScenarioConfig::default()
        };
        assert!(early.validate(4).is_err(), "leave before the join");

        let twice = ScenarioConfig {
            churn: vec![leave(0, 1), leave(1, 1)],
            ..ScenarioConfig::default()
        };
        assert!(twice.validate(4).is_err(), "double leave");

        let ghost = ScenarioConfig {
            churn: vec![ret(0, 1)],
            ..ScenarioConfig::default()
        };
        assert!(ghost.validate(4).is_err(), "return without leave");

        let zero = ScenarioConfig {
            churn: vec![join(0, 0)],
            ..ScenarioConfig::default()
        };
        assert!(zero.validate(4).is_err(), "zero-count join");
    }

    #[test]
    fn validate_checks_parameter_ranges() {
        let bad_wave = ScenarioConfig {
            diurnal: Some(DiurnalWave {
                period_cycles: 0,
                min_scale: 0.0,
                phase_spread: 1.0,
            }),
            ..ScenarioConfig::default()
        };
        assert!(bad_wave.validate(4).is_err());

        let bad_decay = ScenarioConfig {
            throttle: vec![ThrottleRule {
                start_cycle: 0,
                device: None,
                compute_decay: 1.5,
                bandwidth_decay: 0.0,
                floor: 0.1,
            }],
            ..ScenarioConfig::default()
        };
        assert!(bad_decay.validate(4).is_err());

        let bad_floor = ScenarioConfig {
            throttle: vec![ThrottleRule {
                start_cycle: 0,
                device: None,
                compute_decay: 0.1,
                bandwidth_decay: 0.0,
                floor: 0.0,
            }],
            ..ScenarioConfig::default()
        };
        assert!(bad_floor.validate(4).is_err());

        let ghost_device = ScenarioConfig {
            throttle: vec![ThrottleRule {
                start_cycle: 0,
                device: Some(99),
                compute_decay: 0.1,
                bandwidth_decay: 0.0,
                floor: 0.1,
            }],
            ..ScenarioConfig::default()
        };
        assert!(ghost_device.validate(4).is_err());

        let nan_drift = ScenarioConfig {
            drift: vec![DriftEvent {
                cycle: 0,
                kind: DriftKind::InputShift,
                amount: f64::NAN,
            }],
            ..ScenarioConfig::default()
        };
        assert!(nan_drift.validate(4).is_err());
    }

    #[test]
    fn outage_windows_are_half_open_and_validated() {
        let o = OutageWindow {
            from_cycle: 2,
            until_cycle: 5,
            device: Some(1),
        };
        assert!(!o.contains(1));
        assert!(o.contains(2));
        assert!(o.contains(4));
        assert!(!o.contains(5), "until_cycle is exclusive");
        assert!(o.applies_to(1));
        assert!(!o.applies_to(2));
        assert!(
            OutageWindow { device: None, ..o }.applies_to(2),
            "fleet-wide outage applies to everyone"
        );

        let ok = ScenarioConfig {
            outages: vec![o],
            ..ScenarioConfig::default()
        };
        assert!(!ok.is_empty());
        assert!(ok.validate(4).is_ok());

        let empty_window = ScenarioConfig {
            outages: vec![OutageWindow {
                from_cycle: 3,
                until_cycle: 3,
                device: None,
            }],
            ..ScenarioConfig::default()
        };
        assert!(empty_window.validate(4).is_err(), "empty window");

        let ghost = ScenarioConfig {
            outages: vec![OutageWindow {
                from_cycle: 0,
                until_cycle: 2,
                device: Some(9),
            }],
            ..ScenarioConfig::default()
        };
        assert!(ghost.validate(4).is_err(), "device does not exist");

        // A device enrolled by an earlier join may be targeted.
        let late = ScenarioConfig {
            churn: vec![join(1, 8)],
            outages: vec![OutageWindow {
                from_cycle: 2,
                until_cycle: 4,
                device: Some(9),
            }],
            ..ScenarioConfig::default()
        };
        assert!(late.validate(4).is_ok());

        // Serde: `device` defaults to fleet-wide.
        let parsed: ScenarioConfig =
            serde_json::from_str(r#"{"outages": [{"from_cycle": 1, "until_cycle": 3}]}"#).unwrap();
        assert_eq!(parsed.outages.len(), 1);
        assert!(parsed.outages[0].device.is_none());
    }

    #[test]
    fn throttle_ramp_is_monotone_and_floored() {
        let r = ThrottleRule {
            start_cycle: 2,
            device: Some(3),
            compute_decay: 0.25,
            bandwidth_decay: 0.5,
            floor: 0.2,
        };
        assert_eq!(r.compute_scale(0), 1.0, "inactive before start");
        assert_eq!(r.compute_scale(2), 1.0, "full speed at onset");
        let mut prev = 1.0;
        for c in 2..12 {
            let s = r.compute_scale(c);
            assert!(s <= prev, "monotone non-increasing");
            assert!(s >= r.floor, "never below floor");
            prev = s;
        }
        assert_eq!(r.compute_scale(100), 0.2, "clamps at floor");
        assert_eq!(r.bandwidth_scale(3), 0.5);
        assert!(r.applies_to(3));
        assert!(!r.applies_to(4));
        assert!(
            ThrottleRule { device: None, ..r }.applies_to(4),
            "fleet-wide rule applies to everyone"
        );
        assert!(!r.active_at(1));
        assert!(r.active_at(2));
    }

    #[test]
    fn wave_stays_in_band_and_is_periodic() {
        let w = DiurnalWave {
            period_cycles: 24,
            min_scale: 0.25,
            phase_spread: 1.0,
        };
        for cycle in 0..100 {
            for phase in [0.0, 0.33, 0.99] {
                let s = w.scale(phase, cycle);
                assert!((0.25..=1.0).contains(&s), "scale {s} out of band");
            }
        }
        assert_eq!(
            w.scale(0.4, 3).to_bits(),
            w.scale(0.4, 3 + 24).to_bits(),
            "exactly periodic"
        );
        // Phase actually separates devices.
        assert_ne!(w.scale(0.0, 5).to_bits(), w.scale(0.5, 5).to_bits());
        // Zero spread puts everyone in sync regardless of phase.
        let sync = DiurnalWave {
            phase_spread: 0.0,
            ..w
        };
        assert_eq!(sync.scale(0.1, 7).to_bits(), sync.scale(0.9, 7).to_bits());
    }

    #[test]
    fn drift_kind_trace_names_are_stable() {
        assert_eq!(DriftKind::LabelRotate.trace_kind(), "drift_label_rotate");
        assert_eq!(DriftKind::InputShift.trace_kind(), "drift_input_shift");
    }
}
