//! A deterministic simulated-time event queue.
//!
//! The cycle-based engine in `helios-fl` models synchronous rounds
//! directly; this queue is the substrate for *continuous-time* studies
//! (e.g. fully event-driven asynchronous arrivals, heterogeneous
//! communication delays). Events fire in timestamp order; ties break by
//! insertion order, so identically-seeded simulations replay identically.
//!
//! # Example
//!
//! ```
//! use helios_device::{EventQueue, SimTime};
//!
//! let mut q = EventQueue::new();
//! q.schedule(SimTime::from_secs(5.0), "b-finishes");
//! q.schedule(SimTime::from_secs(2.0), "a-finishes");
//! q.schedule(SimTime::from_secs(5.0), "c-finishes"); // same time as b
//! let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
//! assert_eq!(order, vec!["a-finishes", "b-finishes", "c-finishes"]);
//! ```

use crate::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: reverse so the earliest time (then the
        // lowest sequence number) pops first. `total_cmp` agrees with the
        // ordinary float order on the finite non-negative values SimTime
        // guarantees, and is total, so no fallible unwrap is needed.
        other
            .time
            .as_secs_f64()
            .total_cmp(&self.time.as_secs_f64())
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-queue of `(SimTime, E)` events with deterministic FIFO
/// tie-breaking.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` to fire at `time`.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Timestamp of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Pops every event scheduled at or before `deadline`, in order.
    pub fn drain_until(&mut self, deadline: SimTime) -> Vec<(SimTime, E)> {
        let mut fired = Vec::new();
        while self.peek_time().is_some_and(|t| t <= deadline) {
            if let Some(entry) = self.pop() {
                fired.push(entry);
            }
        }
        fired
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3.0), 3);
        q.schedule(SimTime::from_secs(1.0), 1);
        q.schedule(SimTime::from_secs(2.0), 2);
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_time().unwrap().as_secs_f64(), 1.0);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert!(q.is_empty());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(SimTime::from_secs(7.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn drain_until_respects_deadline() {
        let mut q = EventQueue::new();
        for i in 1..=5 {
            q.schedule(SimTime::from_secs(i as f64), i);
        }
        let fired = q.drain_until(SimTime::from_secs(3.0));
        assert_eq!(fired.len(), 3);
        assert_eq!(fired.last().unwrap().1, 3);
        assert_eq!(q.len(), 2);
        // Deadline before everything: nothing fires.
        assert!(q.drain_until(SimTime::from_secs(0.5)).is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop_stay_ordered() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10.0), "late");
        q.schedule(SimTime::from_secs(1.0), "early");
        assert_eq!(q.pop().unwrap().1, "early");
        q.schedule(SimTime::from_secs(5.0), "middle");
        assert_eq!(q.pop().unwrap().1, "middle");
        assert_eq!(q.pop().unwrap().1, "late");
        assert!(q.pop().is_none());
    }

    #[test]
    fn default_is_empty() {
        let q: EventQueue<u8> = EventQueue::default();
        assert!(q.is_empty());
        assert!(q.peek_time().is_none());
    }
}
