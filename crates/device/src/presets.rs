//! Device presets calibrated to the paper's Table I.
//!
//! The paper fabricates four straggler configurations by throttling Jetson
//! Nano boards to mimic a Nano in CPU mode, a Raspberry Pi, and an AWS
//! DeepLens in GPU and CPU mode. Table I lists their effective compute
//! bandwidths (7 / 6 / 5.5 / 4.5 GFLOPS) and training memory budgets
//! (252 / 150 / 100 / 110 MB); we take those numbers directly as the
//! `C_cpu` and capacity fields. Memory and network bandwidths are set to
//! realistic board values — they contribute the same small correction
//! terms as in the paper, where `W/C_cpu` dominates `Te` (the Table I time
//! ratios 20.6 : 23.8 : 27.2 : 34 track `1/C` closely).
//!
//! The **capable** reference device is the full-power Jetson Nano GPU at
//! an effective 25 GFLOPS, giving straggler slowdowns of 3.6–5.6× —
//! matching Fig 1's 2.3 h → 7.7 h cycle inflation (≈3.3×) for the
//! mid-range straggler.

use crate::ResourceProfile;

const MB: u64 = 1 << 20;

/// Full-power Jetson Nano (GPU mode): the capable, non-straggler device.
pub fn jetson_nano() -> ResourceProfile {
    ResourceProfile::new("jetson-nano-gpu", 25.0e9, 6.0e9, 12.0e6, 2048 * MB)
}

/// Jetson Nano throttled to CPU-only mode (Table I column 1).
pub fn jetson_nano_cpu() -> ResourceProfile {
    ResourceProfile::new("jetson-nano-cpu", 7.0e9, 4.0e9, 12.0e6, 252 * MB)
}

/// Raspberry Pi class device (Table I column 2).
pub fn raspberry_pi() -> ResourceProfile {
    ResourceProfile::new("raspberry-pi", 6.0e9, 2.0e9, 6.0e6, 150 * MB)
}

/// AWS DeepLens in GPU mode (Table I column 3).
pub fn deeplens_gpu() -> ResourceProfile {
    ResourceProfile::new("deeplens-gpu", 5.5e9, 3.0e9, 12.0e6, 100 * MB)
}

/// AWS DeepLens in CPU mode (Table I column 4).
pub fn deeplens_cpu() -> ResourceProfile {
    ResourceProfile::new("deeplens-cpu", 4.5e9, 2.5e9, 12.0e6, 110 * MB)
}

/// The four Table I straggler profiles, strongest first.
pub fn table1_stragglers() -> Vec<ResourceProfile> {
    vec![
        jetson_nano_cpu(),
        raspberry_pi(),
        deeplens_gpu(),
        deeplens_cpu(),
    ]
}

/// A fleet of `capable` full-power devices followed by `stragglers`
/// Table I straggler devices (cycling through the four presets when more
/// than four are requested), each with a unique name.
///
/// This is the standard fleet shape of the paper's experiments:
/// 4 devices = 2 capable + 2 stragglers, 6 devices = 3 + 3 (§VII.B).
pub fn mixed_fleet(capable: usize, stragglers: usize) -> Vec<ResourceProfile> {
    let straggler_presets = table1_stragglers();
    let mut fleet = Vec::with_capacity(capable + stragglers);
    for i in 0..capable {
        fleet.push(jetson_nano().renamed(format!("capable-{i}")));
    }
    for i in 0..stragglers {
        let base = &straggler_presets[i % straggler_presets.len()];
        fleet.push(base.renamed(format!("straggler-{i}({})", base.name())));
    }
    fleet
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CostModel, TrainingWorkload};

    #[test]
    fn table1_compute_ordering_matches_paper() {
        let s = table1_stragglers();
        assert_eq!(s.len(), 4);
        // Strongest to weakest, exactly as Table I orders its columns.
        for pair in s.windows(2) {
            assert!(pair[0].compute_flops_per_sec() > pair[1].compute_flops_per_sec());
        }
        assert_eq!(s[0].compute_flops_per_sec(), 7.0e9);
        assert_eq!(s[3].compute_flops_per_sec(), 4.5e9);
    }

    #[test]
    fn table1_time_ratios_track_paper_shape() {
        // Paper Table I time costs: 20.6, 23.8, 27.2, 34 minutes.
        // Ratios vs the first: 1.0, 1.16, 1.32, 1.65.
        let paper = [20.6, 23.8, 27.2, 34.0];
        let work = TrainingWorkload::new(8.0e12, 4.0e10, 1.0e7);
        let times: Vec<f64> = table1_stragglers()
            .iter()
            .map(|d| CostModel::time_for(d, &work).as_secs_f64())
            .collect();
        for i in 1..4 {
            let ours = times[i] / times[0];
            let theirs = paper[i] / paper[0];
            assert!(
                (ours - theirs).abs() < 0.20 * theirs,
                "device {i}: ratio {ours:.2} vs paper {theirs:.2}"
            );
        }
    }

    #[test]
    fn capable_device_is_several_times_faster() {
        let work = TrainingWorkload::new(8.0e12, 4.0e10, 1.0e7);
        let capable = jetson_nano();
        for s in table1_stragglers() {
            let slowdown = CostModel::slowdown_vs(&s, &capable, &work);
            assert!(
                (2.5..8.0).contains(&slowdown),
                "{}: slowdown {slowdown:.1} out of expected band",
                s.name()
            );
        }
    }

    #[test]
    fn mixed_fleet_shape_and_names() {
        let fleet = mixed_fleet(3, 3);
        assert_eq!(fleet.len(), 6);
        assert!(fleet[0].name().starts_with("capable-0"));
        assert!(fleet[3].name().contains("jetson-nano-cpu"));
        assert!(fleet[5].name().contains("deeplens-gpu"));
        // More stragglers than presets cycles around.
        let big = mixed_fleet(0, 6);
        assert!(big[4].name().contains("jetson-nano-cpu"));
    }

    #[test]
    fn straggler_memory_budgets_match_table1() {
        let s = table1_stragglers();
        let expected_mb = [252.0, 150.0, 100.0, 110.0];
        for (d, mb) in s.iter().zip(expected_mb) {
            assert_eq!(d.memory_capacity_bytes(), mb * (1u64 << 20) as f64);
        }
    }
}
