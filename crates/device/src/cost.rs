//! The paper's analytic training-time model (§IV.B).

use crate::{ResourceProfile, SimTime};
use serde::{Deserialize, Serialize};

/// The `(W, M, U)` inputs to the cost formula: computation workload in
/// FLOPs, memory traffic in bytes, and bytes exchanged with the server.
///
/// Produced upstream from `helios-nn`'s per-layer cost walker; one
/// workload describes one local training cycle (all local epochs plus the
/// parameter upload/download).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TrainingWorkload {
    /// Computation workload `W` in FLOPs.
    pub flops: f64,
    /// Memory traffic `M` in bytes.
    pub mem_bytes: f64,
    /// Network traffic `U` in bytes (upload + download).
    pub net_bytes: f64,
}

impl TrainingWorkload {
    /// Creates a workload triple.
    ///
    /// # Panics
    ///
    /// Panics if any component is negative or not finite.
    pub fn new(flops: f64, mem_bytes: f64, net_bytes: f64) -> Self {
        for (label, v) in [
            ("flops", flops),
            ("mem_bytes", mem_bytes),
            ("net_bytes", net_bytes),
        ] {
            assert!(
                v.is_finite() && v >= 0.0,
                "{label} must be non-negative and finite, got {v}"
            );
        }
        TrainingWorkload {
            flops,
            mem_bytes,
            net_bytes,
        }
    }

    /// Componentwise scaling (e.g. multiplying by local epoch count).
    pub fn scaled(&self, factor: f64) -> Self {
        TrainingWorkload::new(
            self.flops * factor,
            self.mem_bytes * factor,
            self.net_bytes * factor,
        )
    }
}

/// Evaluator of the paper's cost formula
/// `Te = W/C_cpu + M/V_mc + U/B_n`.
///
/// Stateless: all device dependence lives in [`ResourceProfile`], all
/// model dependence in [`TrainingWorkload`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostModel;

impl CostModel {
    /// Training-cycle time of `work` on `device`.
    pub fn time_for(device: &ResourceProfile, work: &TrainingWorkload) -> SimTime {
        let secs = work.flops / device.compute_flops_per_sec()
            + work.mem_bytes / device.mem_bytes_per_sec()
            + work.net_bytes / device.net_bytes_per_sec();
        SimTime::from_secs(secs)
    }

    /// Whether the workload's live memory fits the device.
    ///
    /// `resident_bytes` is the peak training footprint (parameters,
    /// gradients, and activations), not the traffic volume.
    pub fn fits_memory(device: &ResourceProfile, resident_bytes: f64) -> bool {
        resident_bytes <= device.memory_capacity_bytes()
    }

    /// Ratio of `device`'s cycle time to `reference`'s on the same
    /// workload — >1 means `device` is slower (a straggler candidate).
    pub fn slowdown_vs(
        device: &ResourceProfile,
        reference: &ResourceProfile,
        work: &TrainingWorkload,
    ) -> f64 {
        let t_dev = Self::time_for(device, work).as_secs_f64();
        let t_ref = Self::time_for(reference, work).as_secs_f64();
        if t_ref == 0.0 {
            1.0
        } else {
            t_dev / t_ref
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device(c: f64, v: f64, b: f64) -> ResourceProfile {
        ResourceProfile::new("t", c, v, b, 1 << 30)
    }

    #[test]
    fn formula_matches_hand_computation() {
        let d = device(2e9, 1e9, 1e8);
        let w = TrainingWorkload::new(4e9, 2e9, 1e8);
        // 4e9/2e9 + 2e9/1e9 + 1e8/1e8 = 2 + 2 + 1 = 5 s.
        let t = CostModel::time_for(&d, &w);
        assert!((t.as_secs_f64() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn zero_workload_takes_zero_time() {
        let d = device(1e9, 1e9, 1e8);
        let t = CostModel::time_for(&d, &TrainingWorkload::default());
        assert_eq!(t.as_secs_f64(), 0.0);
    }

    #[test]
    fn weaker_compute_is_slower() {
        let strong = device(10e9, 1e9, 1e8);
        let weak = device(1e9, 1e9, 1e8);
        let w = TrainingWorkload::new(1e10, 1e8, 1e6);
        assert!(CostModel::time_for(&weak, &w) > CostModel::time_for(&strong, &w));
        assert!(CostModel::slowdown_vs(&weak, &strong, &w) > 1.0);
        assert!((CostModel::slowdown_vs(&strong, &strong, &w) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scaled_workload_scales_time_linearly() {
        let d = device(1e9, 1e9, 1e8);
        let w = TrainingWorkload::new(1e9, 1e8, 1e6);
        let t1 = CostModel::time_for(&d, &w).as_secs_f64();
        let t3 = CostModel::time_for(&d, &w.scaled(3.0)).as_secs_f64();
        assert!((t3 - 3.0 * t1).abs() < 1e-9);
    }

    #[test]
    fn memory_fit_check() {
        let d = ResourceProfile::new("m", 1e9, 1e9, 1e8, 100 << 20);
        assert!(CostModel::fits_memory(&d, (50 << 20) as f64));
        assert!(!CostModel::fits_memory(&d, (200 << 20) as f64));
    }

    #[test]
    #[should_panic(expected = "flops must be non-negative")]
    fn negative_workload_panics() {
        let _ = TrainingWorkload::new(-1.0, 0.0, 0.0);
    }
}
