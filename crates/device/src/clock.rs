//! Deterministic simulated time.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point (or span) on the simulated timeline, in seconds.
///
/// A thin `f64` newtype: simulated time is continuous and derived from the
/// analytic cost model, not from the host clock. Ordering, addition, and
/// subtraction behave like plain seconds.
///
/// # Example
///
/// ```
/// use helios_device::SimTime;
///
/// let a = SimTime::from_secs(90.0);
/// let b = SimTime::from_mins(1.0);
/// assert!(a > b);
/// assert_eq!((a - b).as_secs_f64(), 30.0);
/// assert_eq!(format!("{b}"), "1m00.0s");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite — simulated time always
    /// moves forward.
    pub fn from_secs(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "simulated time must be finite and non-negative, got {secs}"
        );
        SimTime(secs)
    }

    /// Creates a time from minutes.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`SimTime::from_secs`].
    pub fn from_mins(mins: f64) -> Self {
        SimTime::from_secs(mins * 60.0)
    }

    /// Creates a time from hours.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`SimTime::from_secs`].
    pub fn from_hours(hours: f64) -> Self {
        SimTime::from_secs(hours * 3600.0)
    }

    /// Seconds as `f64`.
    pub fn as_secs_f64(self) -> f64 {
        self.0
    }

    /// Minutes as `f64`.
    pub fn as_mins_f64(self) -> f64 {
        self.0 / 60.0
    }

    /// Hours as `f64`.
    pub fn as_hours_f64(self) -> f64 {
        self.0 / 3600.0
    }

    /// The larger of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        if other.0 > self.0 {
            other
        } else {
            self
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;

    /// Saturating subtraction: simulated spans never go negative.
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime((self.0 - rhs.0).max(0.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.0;
        if total >= 3600.0 {
            let h = (total / 3600.0).floor();
            let m = (total - h * 3600.0) / 60.0;
            write!(f, "{h:.0}h{m:04.1}m")
        } else if total >= 60.0 {
            let m = (total / 60.0).floor();
            let s = total - m * 60.0;
            write!(f, "{m:.0}m{s:04.1}s")
        } else {
            write!(f, "{total:.2}s")
        }
    }
}

/// A monotonically advancing simulated clock.
///
/// # Example
///
/// ```
/// use helios_device::{SimClock, SimTime};
///
/// let mut clock = SimClock::new();
/// clock.advance(SimTime::from_secs(5.0));
/// clock.advance_to(SimTime::from_secs(3.0)); // in the past: no-op
/// assert_eq!(clock.now().as_secs_f64(), 5.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SimClock {
    now: SimTime,
}

impl SimClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the clock by a span.
    pub fn advance(&mut self, span: SimTime) {
        self.now += span;
    }

    /// Moves the clock forward to `t`; a `t` in the past is ignored
    /// (the clock is monotone).
    pub fn advance_to(&mut self, t: SimTime) {
        self.now = self.now.max(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(SimTime::from_mins(2.0).as_secs_f64(), 120.0);
        assert_eq!(SimTime::from_hours(1.0).as_mins_f64(), 60.0);
        assert_eq!(SimTime::ZERO.as_secs_f64(), 0.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_time_panics() {
        let _ = SimTime::from_secs(-1.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn nan_time_panics() {
        let _ = SimTime::from_secs(f64::NAN);
    }

    #[test]
    fn arithmetic_saturates() {
        let a = SimTime::from_secs(10.0);
        let b = SimTime::from_secs(4.0);
        assert_eq!((a + b).as_secs_f64(), 14.0);
        assert_eq!((a - b).as_secs_f64(), 6.0);
        assert_eq!((b - a).as_secs_f64(), 0.0, "saturating");
        assert_eq!(a.max(b), a);
    }

    #[test]
    fn display_formats_by_magnitude() {
        assert_eq!(SimTime::from_secs(5.25).to_string(), "5.25s");
        assert_eq!(SimTime::from_secs(90.0).to_string(), "1m30.0s");
        assert_eq!(SimTime::from_hours(2.5).to_string(), "2h30.0m");
    }

    #[test]
    fn clock_is_monotone() {
        let mut c = SimClock::new();
        c.advance(SimTime::from_secs(7.0));
        assert_eq!(c.now().as_secs_f64(), 7.0);
        c.advance_to(SimTime::from_secs(3.0));
        assert_eq!(c.now().as_secs_f64(), 7.0);
        c.advance_to(SimTime::from_secs(11.0));
        assert_eq!(c.now().as_secs_f64(), 11.0);
    }
}
