//! Device resource profiles.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Hardware resource description of one edge device.
///
/// The three bandwidths are the denominators of the paper's §IV.B cost
/// formula; `memory_capacity_bytes` is the budget the resource-based
/// volume planner must fit a straggler's sub-model into.
///
/// # Example
///
/// ```
/// use helios_device::ResourceProfile;
///
/// let dev = ResourceProfile::new("probe", 5.0e9, 2.0e9, 1.0e8, 128 << 20);
/// assert_eq!(dev.name(), "probe");
/// assert!(dev.compute_flops_per_sec() > dev.net_bytes_per_sec());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceProfile {
    name: String,
    compute_flops_per_sec: f64,
    mem_bytes_per_sec: f64,
    net_bytes_per_sec: f64,
    memory_capacity_bytes: f64,
}

impl ResourceProfile {
    /// Creates a profile.
    ///
    /// # Panics
    ///
    /// Panics if any bandwidth or capacity is not positive and finite —
    /// a zero-bandwidth device would yield infinite training time.
    pub fn new(
        name: impl Into<String>,
        compute_flops_per_sec: f64,
        mem_bytes_per_sec: f64,
        net_bytes_per_sec: f64,
        memory_capacity_bytes: u64,
    ) -> Self {
        for (label, v) in [
            ("compute", compute_flops_per_sec),
            ("memory bandwidth", mem_bytes_per_sec),
            ("network bandwidth", net_bytes_per_sec),
            ("memory capacity", memory_capacity_bytes as f64),
        ] {
            assert!(
                v.is_finite() && v > 0.0,
                "{label} must be positive and finite, got {v}"
            );
        }
        ResourceProfile {
            name: name.into(),
            compute_flops_per_sec,
            mem_bytes_per_sec,
            net_bytes_per_sec,
            memory_capacity_bytes: memory_capacity_bytes as f64,
        }
    }

    /// Human-readable device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Compute bandwidth `C_cpu` in FLOP/s.
    pub fn compute_flops_per_sec(&self) -> f64 {
        self.compute_flops_per_sec
    }

    /// Memory transfer speed `V_mc` in bytes/s.
    pub fn mem_bytes_per_sec(&self) -> f64 {
        self.mem_bytes_per_sec
    }

    /// Network bandwidth `B_n` in bytes/s.
    pub fn net_bytes_per_sec(&self) -> f64 {
        self.net_bytes_per_sec
    }

    /// Available training memory in bytes.
    pub fn memory_capacity_bytes(&self) -> f64 {
        self.memory_capacity_bytes
    }

    /// Returns a renamed copy (used when instantiating several simulated
    /// boards from one preset).
    pub fn renamed(&self, name: impl Into<String>) -> Self {
        let mut p = self.clone();
        p.name = name.into();
        p
    }

    /// Returns a copy with compute bandwidth scaled by `factor` —
    /// the knob the paper turns (CPU/GPU throttling) to fabricate
    /// stragglers from identical boards.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive and finite.
    pub fn throttled(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "throttle factor must be positive and finite, got {factor}"
        );
        let mut p = self.compute_scaled(factor);
        p.name = format!("{}@x{factor:.2}", self.name);
        p
    }

    /// Returns a copy with compute bandwidth scaled by `factor`, keeping
    /// the name unchanged — the scenario engine's battery/thermal
    /// throttling knob, recomputed from the pristine profile every cycle
    /// (a renaming copy like [`ResourceProfile::throttled`] would
    /// compound suffixes when applied repeatedly).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive and finite.
    pub fn compute_scaled(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "throttle factor must be positive and finite, got {factor}"
        );
        let mut p = self.clone();
        p.compute_flops_per_sec *= factor;
        p
    }
}

impl fmt::Display for ResourceProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({:.1} GFLOPS, {:.1} GB/s mem, {:.0} MB/s net, {:.0} MB cap)",
            self.name,
            self.compute_flops_per_sec / 1e9,
            self.mem_bytes_per_sec / 1e9,
            self.net_bytes_per_sec / 1e6,
            self.memory_capacity_bytes / (1 << 20) as f64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_return_inputs() {
        let p = ResourceProfile::new("x", 1e9, 2e9, 3e7, 1 << 30);
        assert_eq!(p.compute_flops_per_sec(), 1e9);
        assert_eq!(p.mem_bytes_per_sec(), 2e9);
        assert_eq!(p.net_bytes_per_sec(), 3e7);
        assert_eq!(p.memory_capacity_bytes(), (1u64 << 30) as f64);
    }

    #[test]
    #[should_panic(expected = "compute must be positive")]
    fn zero_compute_panics() {
        let _ = ResourceProfile::new("x", 0.0, 1.0, 1.0, 1);
    }

    #[test]
    fn throttled_scales_compute_only() {
        let p = ResourceProfile::new("nano", 10e9, 2e9, 3e7, 1 << 30);
        let t = p.throttled(0.5);
        assert_eq!(t.compute_flops_per_sec(), 5e9);
        assert_eq!(t.mem_bytes_per_sec(), 2e9);
        assert!(t.name().starts_with("nano@x0.50"));
    }

    #[test]
    #[should_panic(expected = "throttle factor")]
    fn bad_throttle_panics() {
        let p = ResourceProfile::new("x", 1e9, 1e9, 1e7, 1);
        let _ = p.throttled(0.0);
    }

    #[test]
    fn compute_scaled_keeps_name_and_composes() {
        let p = ResourceProfile::new("nano", 10e9, 2e9, 3e7, 1 << 30);
        let s = p.compute_scaled(0.5);
        assert_eq!(s.name(), "nano", "no rename suffix");
        assert_eq!(s.compute_flops_per_sec(), 5e9);
        assert_eq!(s.mem_bytes_per_sec(), 2e9);
        assert_eq!(s.net_bytes_per_sec(), 3e7);
        // Repeated application multiplies without mangling the name.
        let s2 = s.compute_scaled(0.5);
        assert_eq!(s2.name(), "nano");
        assert_eq!(s2.compute_flops_per_sec(), 2.5e9);
    }

    #[test]
    #[should_panic(expected = "throttle factor")]
    fn bad_compute_scale_panics() {
        let p = ResourceProfile::new("x", 1e9, 1e9, 1e7, 1);
        let _ = p.compute_scaled(f64::NAN);
    }

    #[test]
    fn renamed_keeps_resources() {
        let p = ResourceProfile::new("a", 1e9, 1e9, 1e7, 1 << 20);
        let r = p.renamed("b");
        assert_eq!(r.name(), "b");
        assert_eq!(r.compute_flops_per_sec(), p.compute_flops_per_sec());
    }

    #[test]
    fn display_is_informative() {
        let p = ResourceProfile::new("nano", 7e9, 4e9, 1.2e7, 252 << 20);
        let s = p.to_string();
        assert!(s.contains("nano"));
        assert!(s.contains("7.0 GFLOPS"));
        assert!(s.contains("252 MB"));
    }
}
