//! Lazily synthesized device populations.
//!
//! At fleet scale (100k+ enrolled devices, a few hundred sampled per
//! round) the simulator cannot afford to materialize every
//! [`ResourceProfile`] up front. This module derives a device's profile
//! on demand as a *pure function* of `(base_seed, device_index)` — the
//! same scheme the network crate uses for per-device link streams — so
//! unsampled devices cost nothing and any device's profile can be
//! reconstructed bit-for-bit at any time, in any order.
//!
//! The hash chain is an inline splitmix64 finalizer rather than the
//! workspace's ChaCha [`TensorRng`](https://docs.rs/rand_chacha): this
//! crate deliberately has no tensor dependency, and a profile needs only
//! a handful of well-mixed 64-bit draws, not a stream.

use crate::{presets, ResourceProfile};
use serde::{Deserialize, Serialize};

/// Golden-ratio multiplier used across the workspace for index mixing.
const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;
/// Domain-separation tag for the profile stream ("PROF").
const PROFILE_STREAM: u64 = 0x5052_4f46;

/// splitmix64 finalizer: a cheap, statistically strong 64-bit mixer.
///
/// Used to derive independent per-device draws from
/// `base_seed ^ tag ^ GOLDEN·(index+1)` without any stored state.
#[must_use]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(GOLDEN);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Maps a mixed 64-bit draw to a uniform `f64` in `[0, 1)`.
#[must_use]
pub fn unit_from_bits(bits: u64) -> f64 {
    // Top 53 bits — the full f64 mantissa width.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// On-demand generator of heterogeneous device profiles.
///
/// `profile(i)` is a pure function of `(base_seed, i)`: it never looks
/// at, or creates, state for any other device, so a 100k-device fleet
/// stores nothing until a device is actually sampled. A fraction of the
/// population (`straggler_fraction`) is drawn from the paper's Table I
/// straggler boards; the rest are full-power Jetson Nano capables. Every
/// device additionally gets an individual compute throttle in
/// `[0.70, 1.00)` so the population is a continuum, not four point
/// masses.
///
/// # Example
///
/// ```
/// use helios_device::fleet::ProfileSynthesizer;
///
/// let synth = ProfileSynthesizer::new(42, 0.3);
/// let a = synth.profile(123_456);
/// let b = synth.profile(123_456);
/// assert_eq!(a, b); // pure in (base_seed, index)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProfileSynthesizer {
    base_seed: u64,
    straggler_fraction: f64,
}

impl ProfileSynthesizer {
    /// Creates a synthesizer.
    ///
    /// # Panics
    ///
    /// Panics if `straggler_fraction` is not in `[0, 1]`.
    #[must_use]
    pub fn new(base_seed: u64, straggler_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&straggler_fraction),
            "straggler fraction must be in [0, 1], got {straggler_fraction}"
        );
        ProfileSynthesizer {
            base_seed,
            straggler_fraction,
        }
    }

    /// The seed every per-device draw is derived from.
    #[must_use]
    pub fn base_seed(&self) -> u64 {
        self.base_seed
    }

    /// Fraction of the population drawn from the Table I straggler boards.
    #[must_use]
    pub fn straggler_fraction(&self) -> f64 {
        self.straggler_fraction
    }

    /// Synthesizes the profile of device `index`.
    ///
    /// Pure in `(base_seed, index)` — calling it in any order, any number
    /// of times, for any subset of devices yields identical profiles.
    #[must_use]
    pub fn profile(&self, index: usize) -> ResourceProfile {
        let h = self
            .base_seed
            .wrapping_mul(GOLDEN)
            .wrapping_add(PROFILE_STREAM)
            .wrapping_add(GOLDEN.wrapping_mul(index as u64 + 1));
        let class_draw = mix64(h);
        let board_draw = mix64(h ^ 1);
        let throttle_draw = mix64(h ^ 2);

        let is_straggler = unit_from_bits(class_draw) < self.straggler_fraction;
        let base = if is_straggler {
            let boards = presets::table1_stragglers();
            boards[(board_draw % boards.len() as u64) as usize].clone()
        } else {
            presets::jetson_nano()
        };
        // Individual silicon/thermal variation: a mild compute throttle.
        let factor = 0.70 + 0.30 * unit_from_bits(throttle_draw);
        base.throttled(factor)
            .renamed(format!("fleet-{index}({})", base.name()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_is_pure_in_seed_and_index() {
        let a = ProfileSynthesizer::new(7, 0.4);
        let b = ProfileSynthesizer::new(7, 0.4);
        for i in [0usize, 1, 17, 99_999] {
            assert_eq!(a.profile(i), b.profile(i));
        }
        // Access order is irrelevant.
        let forward: Vec<_> = (0..8).map(|i| a.profile(i)).collect();
        let backward: Vec<_> = (0..8).rev().map(|i| a.profile(i)).collect();
        for (i, p) in forward.iter().enumerate() {
            assert_eq!(*p, backward[7 - i]);
        }
    }

    #[test]
    fn different_seeds_give_different_populations() {
        let a = ProfileSynthesizer::new(1, 0.5);
        let b = ProfileSynthesizer::new(2, 0.5);
        let differs = (0..32).any(|i| a.profile(i) != b.profile(i));
        assert!(differs, "seed must perturb the population");
    }

    #[test]
    fn straggler_fraction_bounds_population_mix() {
        let all_capable = ProfileSynthesizer::new(3, 0.0);
        assert!((0..64).all(|i| all_capable.profile(i).name().contains("jetson-nano-gpu")));
        let all_straggler = ProfileSynthesizer::new(3, 1.0);
        assert!((0..64).all(|i| !all_straggler.profile(i).name().contains("jetson-nano-gpu")));
    }

    #[test]
    fn straggler_rate_tracks_requested_fraction() {
        let synth = ProfileSynthesizer::new(11, 0.3);
        let n = 4000;
        let stragglers = (0..n)
            .filter(|&i| !synth.profile(i).name().contains("jetson-nano-gpu"))
            .count();
        let rate = stragglers as f64 / n as f64;
        assert!(
            (rate - 0.3).abs() < 0.03,
            "straggler rate {rate} should be near 0.3"
        );
    }

    #[test]
    fn population_is_a_compute_continuum() {
        // Per-device throttles keep same-board devices distinct.
        let synth = ProfileSynthesizer::new(5, 0.0);
        let speeds: Vec<f64> = (0..16)
            .map(|i| synth.profile(i).compute_flops_per_sec())
            .collect();
        let distinct = speeds
            .iter()
            .filter(|&&s| speeds.iter().filter(|&&t| t == s).count() == 1)
            .count();
        assert!(distinct >= 14, "throttles should individualize devices");
        let lo = 0.70 * 25.0e9;
        let hi = 1.00 * 25.0e9;
        assert!(speeds.iter().all(|&s| s >= lo && s < hi));
    }

    #[test]
    fn names_embed_the_device_index() {
        let synth = ProfileSynthesizer::new(9, 0.5);
        assert!(synth.profile(42).name().starts_with("fleet-42("));
    }

    #[test]
    #[should_panic(expected = "straggler fraction")]
    fn rejects_fraction_above_one() {
        let _ = ProfileSynthesizer::new(0, 1.5);
    }

    #[test]
    fn unit_from_bits_is_in_unit_interval() {
        for i in 0..10_000u64 {
            let u = unit_from_bits(mix64(i));
            assert!((0.0..1.0).contains(&u));
        }
    }
}
