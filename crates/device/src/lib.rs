//! Edge-device resource models and simulated time for the Helios
//! reproduction.
//!
//! The paper simulates heterogeneous stragglers by throttling Jetson Nano
//! boards and profiles their training time with an analytic model
//! (§IV.B):
//!
//! ```text
//! Te = W / C_cpu  +  M / V_mc  +  U / B_n
//! ```
//!
//! where `W` is the training computation workload, `M` the memory traffic,
//! `U` the bytes exchanged with the aggregation server, and `C_cpu`,
//! `V_mc`, `B_n` the device's compute bandwidth, memory-transfer speed,
//! and network bandwidth. This crate implements exactly that model:
//!
//! - [`ResourceProfile`] — a device's bandwidths and memory capacity, with
//!   presets for the four straggler configurations of Table I (Jetson Nano
//!   CPU, Raspberry Pi, DeepLens GPU, DeepLens CPU) plus the capable
//!   full-power Jetson Nano;
//! - [`TrainingWorkload`] — the `(W, M, U)` triple, produced upstream by
//!   `helios-nn`'s analytic cost walker;
//! - [`CostModel`] — evaluates `Te` and related quantities;
//! - [`SimTime`] / [`SimClock`] — deterministic simulated wall-clock used
//!   by the federated engine, so reported speedups are exact ratios of
//!   modeled times rather than noisy host measurements.
//!
//! # Example
//!
//! ```
//! use helios_device::{presets, CostModel, TrainingWorkload};
//!
//! let nano = presets::jetson_nano_cpu();
//! let work = TrainingWorkload::new(1.0e12, 2.0e9, 1.0e7);
//! let te = CostModel::time_for(&nano, &work);
//! assert!(te.as_secs_f64() > 0.0);
//! // A weaker device takes longer on the same workload.
//! let dl = presets::deeplens_cpu();
//! assert!(CostModel::time_for(&dl, &work) > te);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod cost;
mod events;
pub mod fleet;
pub mod presets;
mod profile;

pub use clock::{SimClock, SimTime};
pub use cost::{CostModel, TrainingWorkload};
pub use events::EventQueue;
pub use fleet::ProfileSynthesizer;
pub use profile::ResourceProfile;
