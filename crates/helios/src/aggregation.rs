//! Heterogeneity-weighted model aggregation (§VI.B, Eq 10).

/// Computes the paper's adjusting ratios `α_n = r_n / Σ r_n` from each
/// device's neuron keep ratio `r_n`: devices that trained a more complete
/// model structure contribute more to the global model.
///
/// The returned weights sum to 1 (uniform fallback when every ratio is
/// zero).
///
/// # Panics
///
/// Panics if a ratio is negative or not finite.
///
/// # Example
///
/// ```
/// use helios_core::aggregation::heterogeneity_weights;
///
/// let w = heterogeneity_weights(&[1.0, 1.0, 0.5]);
/// assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
/// assert!(w[0] > w[2]); // fuller model, larger weight
/// ```
pub fn heterogeneity_weights(keep_ratios: &[f64]) -> Vec<f64> {
    for &r in keep_ratios {
        assert!(
            r.is_finite() && r >= 0.0,
            "keep ratio must be non-negative and finite, got {r}"
        );
    }
    let total: f64 = keep_ratios.iter().sum();
    if total <= 0.0 {
        let n = keep_ratios.len().max(1);
        return vec![1.0 / n as f64; keep_ratios.len()];
    }
    keep_ratios.iter().map(|&r| r / total).collect()
}

/// Combines the heterogeneity ratio with FedAvg's sample weighting: the
/// aggregation weight of device `n` is `r_n · |D_n|`. Per-parameter
/// normalization happens inside [`helios_fl::aggregate`], so the weights
/// need not sum to 1.
pub fn combined_weights(keep_ratios: &[f64], sample_counts: &[usize]) -> Vec<f64> {
    assert_eq!(
        keep_ratios.len(),
        sample_counts.len(),
        "ratio and sample-count vectors must align"
    );
    heterogeneity_weights(keep_ratios)
        .into_iter()
        .zip(sample_counts)
        .map(|(a, &s)| a * s as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_are_normalized_and_proportional() {
        let w = heterogeneity_weights(&[1.0, 0.5, 0.25]);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((w[0] / w[1] - 2.0).abs() < 1e-12);
        assert!((w[1] / w[2] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn equal_ratios_give_uniform_weights() {
        let w = heterogeneity_weights(&[0.4, 0.4, 0.4, 0.4]);
        for &x in &w {
            assert!((x - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_ratios_fall_back_to_uniform() {
        let w = heterogeneity_weights(&[0.0, 0.0]);
        assert_eq!(w, vec![0.5, 0.5]);
    }

    #[test]
    fn empty_input_is_empty_output() {
        assert!(heterogeneity_weights(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "keep ratio must be non-negative")]
    fn negative_ratio_panics() {
        let _ = heterogeneity_weights(&[-0.1]);
    }

    #[test]
    fn combined_weights_multiply_samples() {
        let w = combined_weights(&[1.0, 0.5], &[100, 100]);
        assert!((w[0] / w[1] - 2.0).abs() < 1e-12);
        let w = combined_weights(&[1.0, 1.0], &[300, 100]);
        assert!((w[0] / w[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn combined_weights_validates_lengths() {
        let _ = combined_weights(&[1.0], &[1, 2]);
    }
}
