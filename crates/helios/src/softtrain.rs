//! Soft-training (§V): contribution-guided rotating neuron selection with
//! the skip-cycle regulator (§VI.A).

use crate::{HeliosError, Result};
use helios_nn::{MaskableUnits, ModelMask, NeuronLayout};
use helios_tensor::TensorRng;

/// Per-layer contribution values `U^{ij}` (Eq 1) of a straggler's maskable
/// neurons: `contributions[i][j]` is the L1 parameter change of unit `j`
/// of maskable layer `i` over the last training cycle.
pub type Contributions = Vec<Vec<f32>>;

/// Computes the contribution metric `U^{ij} = |θ(S_k) − θ(S_{k−1})|`
/// (Eq 1) for every maskable neuron from two flat parameter vectors.
///
/// # Panics
///
/// Panics if the vectors are shorter than the layout's parameter count.
pub fn contributions_from_delta(
    layout: &NeuronLayout,
    units: &MaskableUnits,
    prev: &[f32],
    curr: &[f32],
) -> Contributions {
    let mut out: Contributions = units.0.iter().map(|&n| vec![0.0; n]).collect();
    for (gi, group) in layout.groups().iter().enumerate() {
        let Some(mid) = group.maskable_id() else {
            continue;
        };
        for (unit, slot) in out[mid].iter_mut().enumerate() {
            *slot = layout.neuron_delta_l1(helios_nn::NeuronId { group: gi, unit }, prev, curr);
        }
    }
    out
}

/// Selects one layer's active set: `forced` rejoins first, then the
/// `top_count` highest-contribution units, then a uniformly random fill to
/// `k` active units (Eq 2's `TopK(U) ∪ Rand(U)`).
///
/// This is the sorting-and-selection step whose overhead the paper's §V
/// footnote measures (18 ms vs 12 min of training); the `neuron_selection`
/// criterion bench reproduces that comparison.
///
/// # Panics
///
/// Panics if `k` exceeds the layer width or a forced index is out of
/// range.
pub fn select_layer_mask(
    contributions: &[f32],
    k: usize,
    top_count: usize,
    forced: &[usize],
    rng: &mut TensorRng,
) -> Vec<bool> {
    let n = contributions.len();
    assert!(k <= n, "cannot keep {k} of {n} units");
    let mut active = vec![false; n];
    let mut chosen = 0usize;
    // 1. Forced rejoins (skip-cycle regulator), capped at k.
    for &f in forced {
        assert!(f < n, "forced unit {f} out of range");
        if chosen == k {
            break;
        }
        if !active[f] {
            active[f] = true;
            chosen += 1;
        }
    }
    // 2. Top contributors among the not-yet-chosen. Only units with a
    // strictly positive contribution compete for TopK slots: with an
    // all-equal table (all-zero at cold start, or all-NaN after
    // divergence — `NaN > 0.0` is false) the stable descending sort
    // would otherwise hand the slots to units `0..top_count` every
    // cycle, permanently starving the random rotation of them. Units
    // without evidence of contribution fall through to the rotation
    // fill instead, which covers every unit over time.
    if chosen < k && top_count > 0 {
        let mut order: Vec<usize> = (0..n)
            .filter(|&i| !active[i] && contributions[i] > 0.0)
            .collect();
        order.sort_by(|&a, &b| contributions[b].total_cmp(&contributions[a]));
        for &i in order.iter().take(top_count.min(k - chosen)) {
            active[i] = true;
            chosen += 1;
        }
    }
    // 3. Random rotation fill from the remainder.
    if chosen < k {
        let rest: Vec<usize> = (0..n).filter(|&i| !active[i]).collect();
        for idx in rng.sample_indices(rest.len(), k - chosen) {
            active[rest[idx]] = true;
        }
    }
    active
}

/// The per-straggler soft-training scheduler: owns the straggler's volume,
/// the rotation RNG, and the server-side skip counters `C_s`.
///
/// # Example
///
/// ```
/// use helios_core::softtrain::SoftTrainer;
/// use helios_nn::MaskableUnits;
/// use helios_tensor::TensorRng;
///
/// let units = MaskableUnits(vec![8, 16]);
/// let mut st = SoftTrainer::new(units, 0.5, 0.1, true, TensorRng::seed_from(0))
///     .expect("valid parameters");
/// let mask = st.next_mask(None); // first cycle: random sub-model
/// st.observe(&mask);
/// assert_eq!(mask.active_counts(&MaskableUnits(vec![8, 16])), vec![4, 8]);
/// ```
#[derive(Debug, Clone)]
pub struct SoftTrainer {
    units: MaskableUnits,
    keep: f64,
    p_s: f64,
    regulate: bool,
    skip_cycles: Vec<Vec<u32>>,
    rng: TensorRng,
}

impl SoftTrainer {
    /// Creates a scheduler for a straggler whose maskable layers have
    /// `units` widths, training a `keep` fraction with `p_s` of the kept
    /// set reserved for top contributors. `regulate` enables the §VI.A
    /// skip-cycle regulator.
    ///
    /// # Errors
    ///
    /// Returns [`HeliosError::InvalidConfig`] when `keep` is outside
    /// `(0, 1]` or `p_s` outside `[0, 1]`.
    pub fn new(
        units: MaskableUnits,
        keep: f64,
        p_s: f64,
        regulate: bool,
        rng: TensorRng,
    ) -> Result<Self> {
        if !(keep > 0.0 && keep <= 1.0) {
            return Err(HeliosError::InvalidConfig {
                what: format!("keep ratio {keep} outside (0, 1]"),
            });
        }
        if !(0.0..=1.0).contains(&p_s) {
            return Err(HeliosError::InvalidConfig {
                what: format!("P_s {p_s} outside [0, 1]"),
            });
        }
        let skip_cycles = units.0.iter().map(|&n| vec![0u32; n]).collect();
        Ok(SoftTrainer {
            units,
            keep,
            p_s,
            regulate,
            skip_cycles,
            rng,
        })
    }

    /// Current keep ratio (the straggler's expected model volume).
    pub fn keep(&self) -> f64 {
        self.keep
    }

    /// Updates the keep ratio (dynamic volume adjustment).
    ///
    /// # Errors
    ///
    /// Returns [`HeliosError::InvalidConfig`] for a ratio outside `(0, 1]`.
    pub fn set_keep(&mut self, keep: f64) -> Result<()> {
        if !(keep > 0.0 && keep <= 1.0) {
            return Err(HeliosError::InvalidConfig {
                what: format!("keep ratio {keep} outside (0, 1]"),
            });
        }
        self.keep = keep;
        Ok(())
    }

    /// The paper's skip threshold `1 + m / Σ p_i n_i` (§VI.A): total
    /// maskable neurons over the selected count per cycle.
    pub fn skip_threshold(&self) -> f64 {
        let m = self.units.total() as f64;
        let selected: usize = crate::target::keep_counts(&self.units, self.keep)
            .iter()
            .sum();
        1.0 + m / (selected.max(1) as f64)
    }

    /// Units whose skip counter exceeds the threshold and must rejoin the
    /// next cycle, as `(layer, unit)` pairs.
    pub fn forced_rejoins(&self) -> Vec<(usize, usize)> {
        if !self.regulate {
            return Vec::new();
        }
        let threshold = self.skip_threshold();
        let mut out = Vec::new();
        for (layer, counts) in self.skip_cycles.iter().enumerate() {
            for (unit, &c) in counts.iter().enumerate() {
                if c as f64 > threshold {
                    out.push((layer, unit));
                }
            }
        }
        out
    }

    /// Produces the next cycle's mask.
    ///
    /// With `contributions` from the previous cycle, each layer keeps its
    /// top `P_s` contributors plus a rotating random remainder (Eq 2);
    /// without (the first cycle), the selection is uniformly random.
    /// Forced rejoins from the regulator always enter.
    ///
    /// # Panics
    ///
    /// Panics if `contributions` layer widths disagree with the scheduler's
    /// unit table.
    pub fn next_mask(&mut self, contributions: Option<&Contributions>) -> ModelMask {
        if let Some(c) = contributions {
            assert_eq!(c.len(), self.units.num_layers(), "layer count mismatch");
            for (i, layer) in c.iter().enumerate() {
                assert_eq!(layer.len(), self.units.0[i], "layer {i} width mismatch");
            }
        }
        let counts = crate::target::keep_counts(&self.units, self.keep);
        let forced = self.forced_rejoins();
        let mut mask = ModelMask::all_active(&self.units);
        for (i, (&n, &k)) in self.units.0.iter().zip(&counts).enumerate() {
            let layer_forced: Vec<usize> = forced
                .iter()
                .filter(|(l, _)| *l == i)
                .map(|&(_, u)| u)
                .collect();
            let layer = match contributions {
                Some(c) => {
                    // K = P_s · P_i · n_i top contributors (Eq 2).
                    let top_count = (self.p_s * k as f64).round() as usize;
                    select_layer_mask(&c[i], k, top_count, &layer_forced, &mut self.rng)
                }
                None => {
                    let zeros = vec![0.0f32; n];
                    select_layer_mask(&zeros, k, 0, &layer_forced, &mut self.rng)
                }
            };
            mask.set_layer(i, Some(layer));
        }
        mask
    }

    /// Records which units the cycle actually trained, updating the skip
    /// counters (`C_s = 0` for active units, `+1` for skipped ones).
    pub fn observe(&mut self, mask: &ModelMask) {
        for (layer, counts) in self.skip_cycles.iter_mut().enumerate() {
            for (unit, c) in counts.iter_mut().enumerate() {
                if mask.is_active(layer, unit) {
                    *c = 0;
                } else {
                    *c += 1;
                }
            }
        }
    }

    /// Records a cycle whose scheduled sub-model never arrived: the
    /// update was dropped in transit or missed the round deadline, so
    /// *no* unit trained. Every counter increments — the units that
    /// were scheduled wasted their cycle, and the idle ones skipped one
    /// more — keeping the §VI.A regulator honest under lossy links.
    pub fn observe_missed(&mut self) {
        for counts in &mut self.skip_cycles {
            for c in counts.iter_mut() {
                *c += 1;
            }
        }
    }

    /// Current skip counters (read-only, for inspection and tests).
    pub fn skip_cycles(&self) -> &[Vec<u32>] {
        &self.skip_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn units() -> MaskableUnits {
        MaskableUnits(vec![10, 20])
    }

    fn trainer(keep: f64, p_s: f64, regulate: bool) -> SoftTrainer {
        SoftTrainer::new(units(), keep, p_s, regulate, TensorRng::seed_from(1)).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(SoftTrainer::new(units(), 0.0, 0.1, true, TensorRng::seed_from(0)).is_err());
        assert!(SoftTrainer::new(units(), 0.5, 1.5, true, TensorRng::seed_from(0)).is_err());
        assert!(SoftTrainer::new(units(), 0.5, 0.1, true, TensorRng::seed_from(0)).is_ok());
        let mut t = trainer(0.5, 0.1, true);
        assert!(t.set_keep(0.3).is_ok());
        assert!(t.set_keep(0.0).is_err());
        assert_eq!(t.keep(), 0.3);
    }

    #[test]
    fn select_layer_honours_topk_and_forced() {
        let mut rng = TensorRng::seed_from(2);
        let contribs = vec![0.1, 0.9, 0.5, 0.0, 0.8, 0.2];
        // k=3, top 2 by contribution are units 1 and 4; unit 3 forced.
        let mask = select_layer_mask(&contribs, 3, 2, &[3], &mut rng);
        assert_eq!(mask.iter().filter(|&&b| b).count(), 3);
        assert!(mask[3], "forced unit must join");
        assert!(mask[1], "top contributor must join");
        assert!(mask[4], "second contributor must join");
    }

    #[test]
    fn select_layer_random_fill_rotates() {
        let mut rng = TensorRng::seed_from(3);
        let zeros = vec![0.0f32; 12];
        let a = select_layer_mask(&zeros, 4, 0, &[], &mut rng);
        let b = select_layer_mask(&zeros, 4, 0, &[], &mut rng);
        assert_eq!(a.iter().filter(|&&x| x).count(), 4);
        assert_ne!(a, b, "pure random selection should rotate");
    }

    #[test]
    fn select_layer_forced_overflow_caps_at_k() {
        let mut rng = TensorRng::seed_from(4);
        let zeros = vec![0.0f32; 5];
        let mask = select_layer_mask(&zeros, 2, 0, &[0, 1, 2, 3], &mut rng);
        assert_eq!(mask.iter().filter(|&&b| b).count(), 2);
    }

    #[test]
    fn first_cycle_mask_is_random_with_exact_counts() {
        let mut t = trainer(0.4, 0.1, true);
        let m = t.next_mask(None);
        assert_eq!(m.active_counts(&units()), vec![4, 8]);
    }

    #[test]
    fn contribution_guided_mask_keeps_top_units() {
        let mut t = trainer(0.4, 0.5, false);
        // Layer 0: unit 9 dominates. Layer 1: units 0 and 1 dominate.
        let mut c: Contributions = vec![vec![0.0; 10], vec![0.0; 20]];
        c[0][9] = 5.0;
        c[1][0] = 3.0;
        c[1][1] = 2.0;
        let m = t.next_mask(Some(&c));
        assert!(m.is_active(0, 9));
        assert!(m.is_active(1, 0));
        assert!(m.is_active(1, 1));
        assert_eq!(m.active_counts(&units()), vec![4, 8]);
    }

    #[test]
    fn skip_threshold_matches_formula() {
        let t = trainer(0.5, 0.1, true);
        // m = 30, selected = 5 + 10 = 15 → 1 + 30/15 = 3.
        assert!((t.skip_threshold() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn regulator_forces_long_skipped_units_back() {
        let mut t = trainer(0.5, 0.0, true);
        // Craft a mask that always skips unit 0 of layer 0.
        let mut skip_first = ModelMask::all_active(&units());
        skip_first.set_layer(0, Some((0..10).map(|j| j != 0).collect()));
        skip_first.set_layer(1, Some(vec![true; 20]));
        // Observe enough cycles to cross the threshold (3).
        for _ in 0..4 {
            t.observe(&skip_first);
        }
        let forced = t.forced_rejoins();
        assert_eq!(forced, vec![(0, 0)]);
        // The next mask must include the forced unit.
        let m = t.next_mask(None);
        assert!(m.is_active(0, 0), "regulator must pull unit back in");
        // After training it, the counter resets.
        t.observe(&m);
        assert_eq!(t.skip_cycles()[0][0], 0);
    }

    #[test]
    fn regulator_disabled_never_forces() {
        let mut t = trainer(0.5, 0.0, false);
        let mut skip_first = ModelMask::all_active(&units());
        skip_first.set_layer(0, Some((0..10).map(|j| j != 0).collect()));
        for _ in 0..10 {
            t.observe(&skip_first);
        }
        assert!(t.forced_rejoins().is_empty());
    }

    #[test]
    fn rotation_eventually_covers_every_neuron() {
        // The paper's model-integrity claim: over enough cycles, every
        // neuron joins training at least once.
        let mut t = trainer(0.3, 0.1, true);
        let mut ever_active = [vec![false; 10], vec![false; 20]];
        let mut c: Contributions = vec![vec![0.0; 10], vec![0.0; 20]];
        for _ in 0..30 {
            let m = t.next_mask(Some(&c));
            t.observe(&m);
            for (layer, row) in ever_active.iter_mut().enumerate() {
                for (unit, seen) in row.iter_mut().enumerate() {
                    if m.is_active(layer, unit) {
                        *seen = true;
                        // Active neurons accrue fake contribution, making
                        // the test adversarial: high-U units dominate.
                        c[layer][unit] += 1.0;
                    }
                }
            }
        }
        for (layer, row) in ever_active.iter().enumerate() {
            for (unit, &seen) in row.iter().enumerate() {
                assert!(seen, "neuron ({layer}, {unit}) never trained in 30 cycles");
            }
        }
    }

    #[test]
    fn selection_survives_nan_contributions() {
        // Failure injection: a diverged client reports NaN deltas; the
        // scheduler must neither panic nor prioritize the NaNs.
        let mut rng = TensorRng::seed_from(9);
        let contribs = vec![f32::NAN, 5.0, f32::NAN, 1.0, 0.5, f32::NAN];
        let mask = select_layer_mask(&contribs, 2, 2, &[], &mut rng);
        assert_eq!(mask.iter().filter(|&&b| b).count(), 2);
        assert!(mask[1], "finite top contributor wins over NaNs");
        assert!(mask[3], "second finite contributor wins over NaNs");
    }

    #[test]
    fn trainer_survives_nan_contribution_table() {
        let mut t = trainer(0.4, 0.5, true);
        let c: Contributions = vec![vec![f32::NAN; 10], vec![f32::NAN; 20]];
        let m = t.next_mask(Some(&c));
        assert_eq!(m.active_counts(&units()), vec![4, 8]);
    }

    /// Regression for the TopK tie bias: with an all-equal contribution
    /// table the old stable descending sort handed the `top_count` slots
    /// to units `0..top_count` on every single cycle, so those units
    /// were permanently pinned active and the slots never rotated. With
    /// non-positive contributions excluded from TopK, an all-zero table
    /// must behave like pure random rotation — no unit selected in every
    /// cycle, exact keep counts preserved.
    #[test]
    fn all_zero_contributions_do_not_pin_topk_slots() {
        let mut rng = TensorRng::seed_from(7);
        let zeros = vec![0.0f32; 16];
        let mut always_active = [true; 16];
        for _ in 0..40 {
            let mask = select_layer_mask(&zeros, 4, 2, &[], &mut rng);
            assert_eq!(mask.iter().filter(|&&b| b).count(), 4);
            for (seen, &b) in always_active.iter_mut().zip(&mask) {
                *seen &= b;
            }
        }
        assert!(
            always_active.iter().all(|&pinned| !pinned),
            "an all-equal table must not pin any unit into every cycle's mask"
        );
    }

    /// Same pinning regression for an all-NaN table (diverged client):
    /// NaN fails `> 0.0`, so NaNs can neither win TopK slots nor bias
    /// which units the rotation covers.
    #[test]
    fn all_nan_contributions_do_not_pin_topk_slots() {
        let mut rng = TensorRng::seed_from(8);
        let nans = vec![f32::NAN; 16];
        let mut always_active = [true; 16];
        for _ in 0..40 {
            let mask = select_layer_mask(&nans, 4, 2, &[], &mut rng);
            assert_eq!(mask.iter().filter(|&&b| b).count(), 4);
            for (seen, &b) in always_active.iter_mut().zip(&mask) {
                *seen &= b;
            }
        }
        assert!(
            always_active.iter().all(|&pinned| !pinned),
            "NaN contributions must not pin any unit into every cycle's mask"
        );
    }

    #[test]
    fn observe_missed_increments_every_counter() {
        let mut t = trainer(0.5, 0.0, true);
        let m = t.next_mask(None);
        t.observe(&m);
        // A missed cycle wastes the scheduled units too: every counter
        // moves, including the ones `observe` just reset.
        t.observe_missed();
        t.observe_missed();
        for counts in t.skip_cycles() {
            for (unit, &c) in counts.iter().enumerate() {
                assert!(c >= 2, "unit {unit} skipped {c} < 2 cycles after 2 misses");
            }
        }
    }

    #[test]
    fn contributions_from_delta_maps_layout_to_layers() {
        use helios_nn::models;
        let mut rng = TensorRng::seed_from(5);
        let mut net = models::lenet(10, &mut rng);
        let layout = net.layout();
        let u = net.maskable_units();
        let prev = net.param_vector();
        let mut curr = prev.clone();
        // Perturb one conv-layer-0 unit's bias: group 0, unit 2.
        let idx = layout.neuron_param_indices(helios_nn::NeuronId { group: 0, unit: 2 });
        curr[*idx.last().unwrap()] += 0.5;
        let c = contributions_from_delta(&layout, &u, &prev, &curr);
        assert_eq!(c.len(), 3, "lenet has 3 maskable layers");
        assert!((c[0][2] - 0.5).abs() < 1e-6);
        assert_eq!(c[0][0], 0.0);
        assert!(c[1].iter().all(|&x| x == 0.0));
    }
}
