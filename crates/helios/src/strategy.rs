//! [`HeliosStrategy`]: the full pipeline packaged as a drop-in
//! [`helios_fl::Strategy`].

use crate::softtrain::{contributions_from_delta, Contributions, SoftTrainer};
use crate::{aggregation, identify, target, HeliosError, Result};
use helios_device::SimTime;
use helios_fl::{FlEnv, MaskedUpdate, OnlineAggregator, RoundPolicy, RoutedCycle};
use helios_nn::ModelMask;
use helios_tensor::TensorRng;
use std::collections::{BTreeSet, HashMap};

/// How stragglers are identified (§IV.B).
#[derive(Debug, Clone, PartialEq)]
pub enum Identification {
    /// Black box: rank devices by a lightweight test-bench timing and take
    /// the top `k`.
    TimeBased {
        /// Mini-batch iterations of the test bench.
        iterations: usize,
        /// Number of devices to declare stragglers.
        top_k: usize,
    },
    /// White box: evaluate the cost model on each device's resource
    /// profile; stragglers are devices slower than `slowdown_threshold`
    /// times the fastest device.
    ResourceBased {
        /// Slowdown factor above which a device is a straggler (> 1).
        slowdown_threshold: f64,
    },
}

/// How each straggler's expected model volume is determined (§IV.C).
#[derive(Debug, Clone, PartialEq)]
pub enum VolumePolicy {
    /// Assign from a predefined ladder, slowest straggler first.
    Predefined(Vec<f64>),
    /// Fit the largest volume meeting the capable devices' pace and the
    /// device memory budget, via the cost model.
    ResourceFitted,
}

/// How straggler updates enter the global average (§V.A Step 3 + §VI.B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggregationMode {
    /// Full parameter vectors averaged with heterogeneity weights
    /// `α_n = r_n/Σr_n` (Eq 10) composed with sample counts. Masked
    /// entries carry the straggler's received global values, so the
    /// average stays anchored ("maintains a complete model parameter
    /// updating", §III) while fuller models dominate — the paper's
    /// default Helios behaviour.
    FullWeighted,
    /// Full parameter vectors averaged with plain FedAvg sample weights —
    /// the paper's "S.T. Only" ablation (Fig 6): partial models drag the
    /// global model equally, causing the fluctuation the figure shows.
    FullPlain,
    /// Only uploaded (actually trained) neurons enter the average,
    /// α-weighted and normalized per parameter. More aggressive than the
    /// paper's rule; exposed for ablation studies.
    MaskedWeighted,
}

/// Configuration of the Helios pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct HeliosConfig {
    /// Straggler identification method.
    pub identification: Identification,
    /// Volume determination policy.
    pub volume: VolumePolicy,
    /// Fraction of each straggler's kept set reserved for top-contribution
    /// neurons (the paper selects 0.05–0.1, §VI.A).
    pub p_s: f64,
    /// The §VI.B aggregation rule (see [`AggregationMode`]).
    pub aggregation: AggregationMode,
    /// Enable the §VI.A skip-cycle regulator.
    pub regulation: bool,
    /// Number of initial cycles during which straggler volumes are
    /// dynamically adjusted toward the capable pace (§V.A Step 1:
    /// "Helios needs first few training cycles to finalize the stragglers
    /// and model volumes"). `0` disables adjustment.
    pub dynamic_volume_cycles: usize,
}

impl Default for HeliosConfig {
    fn default() -> Self {
        HeliosConfig {
            identification: Identification::ResourceBased {
                slowdown_threshold: 1.5,
            },
            volume: VolumePolicy::ResourceFitted,
            p_s: 0.1,
            aggregation: AggregationMode::FullWeighted,
            regulation: true,
            dynamic_volume_cycles: 5,
        }
    }
}

impl HeliosConfig {
    /// The paper's "S.T. Only" ablation: soft-training without the
    /// heterogeneous aggregation optimization (Fig 6 baseline).
    pub fn soft_training_only() -> Self {
        HeliosConfig {
            aggregation: AggregationMode::FullPlain,
            ..HeliosConfig::default()
        }
    }

    fn validate(&self) -> Result<()> {
        if !(0.0..=1.0).contains(&self.p_s) {
            return Err(HeliosError::InvalidConfig {
                what: format!("P_s {} outside [0, 1]", self.p_s),
            });
        }
        if let VolumePolicy::Predefined(levels) = &self.volume {
            if levels.is_empty() {
                return Err(HeliosError::InvalidConfig {
                    what: "predefined volume ladder is empty".into(),
                });
            }
        }
        Ok(())
    }
}

/// The Helios federated-learning strategy (the paper's Fig 3 pipeline).
///
/// See the crate-level example for an end-to-end run.
#[derive(Debug, Clone)]
pub struct HeliosStrategy {
    config: HeliosConfig,
    stragglers: Vec<usize>,
    trainers: HashMap<usize, SoftTrainer>,
    contributions: HashMap<usize, Contributions>,
    deadline: SimTime,
    initialized: bool,
    /// The global vector every participant received at this cycle's
    /// broadcast — the reference point for contribution deltas.
    received_global: Vec<f32>,
    /// Masks issued to stragglers this cycle, settled against the
    /// trainers' skip counters only once the round outcome is known
    /// (delivered vs missed). Observing optimistically at issue time
    /// would reset counters for units that never actually contributed.
    issued_masks: HashMap<usize, ModelMask>,
    /// Incremental (sampled-cohort) mode: classification happens per
    /// cohort instead of over the full fleet at `begin_run`.
    incremental: bool,
    /// Devices already classified in incremental mode — never
    /// re-profiled when re-sampled.
    classified: BTreeSet<usize>,
    /// The most recent cohort, driving the cohort-relative
    /// dynamic-volume pass in incremental mode.
    last_cohort: Vec<usize>,
}

impl HeliosStrategy {
    /// Creates the strategy.
    pub fn new(config: HeliosConfig) -> Self {
        HeliosStrategy {
            config,
            stragglers: Vec::new(),
            trainers: HashMap::new(),
            contributions: HashMap::new(),
            deadline: SimTime::ZERO,
            initialized: false,
            received_global: Vec::new(),
            issued_masks: HashMap::new(),
            incremental: false,
            classified: BTreeSet::new(),
            last_cohort: Vec::new(),
        }
    }

    /// The identified straggler client ids (sorted), available after
    /// initialization.
    pub fn stragglers(&self) -> &[usize] {
        &self.stragglers
    }

    /// The current expected model volume of a straggler, if it is one.
    pub fn keep_ratio(&self, client: usize) -> Option<f64> {
        self.trainers.get(&client).map(|t| t.keep())
    }

    /// Read-only access to a straggler's soft-training scheduler state
    /// (per-unit skip counters, keep ratio), for tests and diagnostics.
    pub fn trainer(&self, client: usize) -> Option<&SoftTrainer> {
        self.trainers.get(&client)
    }

    /// The capable-pace deadline the stragglers are fitted to.
    pub fn deadline(&self) -> SimTime {
        self.deadline
    }

    /// Runs identification and target determination against `env`
    /// (idempotent; [`helios_fl::Strategy::run`] calls it automatically).
    ///
    /// # Errors
    ///
    /// Returns identification or volume-fitting errors.
    pub fn initialize(&mut self, env: &mut FlEnv) -> Result<()> {
        if self.initialized {
            return Ok(());
        }
        self.config.validate()?;
        // 1. Straggler identification, ranked slowest first.
        let ranked: Vec<usize> = match &self.config.identification {
            Identification::TimeBased { iterations, top_k } => {
                let index = identify::test_bench_index(env, *iterations)?;
                index.iter().take(*top_k).map(|e| e.client).collect()
            }
            Identification::ResourceBased { slowdown_threshold } => {
                // Combined time = compute + expected link transfer, so a
                // device behind a constrained uplink ranks as the
                // straggler it effectively is (identical to pure compute
                // ranking when networking is disabled).
                let ids = identify::resource_based_combined(env, *slowdown_threshold)?;
                let mut times: Vec<(usize, f64)> = Vec::new();
                for &i in &ids {
                    times.push((i, env.combined_cycle_time(i)?.as_secs_f64()));
                }
                times.sort_by(|a, b| b.1.total_cmp(&a.1));
                times.into_iter().map(|(i, _)| i).collect()
            }
        };
        // 2. Capable pace = slowest capable device at full volume,
        // communication included.
        let mut deadline = SimTime::ZERO;
        for i in 0..env.num_clients() {
            if !ranked.contains(&i) {
                deadline = deadline.max(env.combined_cycle_time(i)?);
            }
        }
        self.deadline = deadline;
        // 3. Volume determination + soft-trainer construction. Fitting
        // targets the *compute* budget: the deadline minus the
        // straggler's expected (full-volume, hence conservative) link
        // time — shrinking the model cannot speed up the download.
        let mut rng = TensorRng::seed_from(env.config().seed ^ 0x48454c49); // "HELI"
        let volumes: Vec<(usize, f64)> = match &self.config.volume {
            VolumePolicy::Predefined(levels) => target::assign_predefined(&ranked, levels)?,
            VolumePolicy::ResourceFitted => {
                let mut out = Vec::with_capacity(ranked.len());
                for &i in &ranked {
                    let budget = target::comm_adjusted_deadline(deadline, env.comm_overhead(i)?);
                    let keep = target::fitted_keep_ratio(env.client_mut(i)?, budget)?;
                    out.push((i, keep));
                }
                out
            }
        };
        for (client, keep) in volumes {
            let units = env.client_mut(client)?.network_mut().maskable_units();
            let trainer = SoftTrainer::new(
                units,
                keep,
                self.config.p_s,
                self.config.regulation,
                rng.split(),
            )?;
            self.trainers.insert(client, trainer);
        }
        self.stragglers = ranked;
        self.stragglers.sort_unstable();
        // Record the classified frontier: devices that join later (the
        // §VI.C admission path or scenario churn) are measured against
        // the established pace when they first appear in a cohort.
        self.classified.extend(0..env.num_clients());
        self.initialized = true;
        Ok(())
    }

    /// Admits a device that joins mid-collaboration (§VI.C): classifies it
    /// against the capable pace, assigns a volume if it is a straggler,
    /// and returns its client index.
    ///
    /// # Errors
    ///
    /// Returns an error when called before initialization, or when volume
    /// fitting fails.
    pub fn admit_device(
        &mut self,
        env: &mut FlEnv,
        profile: helios_device::ResourceProfile,
        shard: helios_data::Dataset,
    ) -> Result<usize> {
        if !self.initialized {
            return Err(HeliosError::InvalidConfig {
                what: "admit_device requires an initialized strategy".into(),
            });
        }
        let id = env.join_client(profile, shard).map_err(HeliosError::from)?;
        self.classify_device(env, id)?;
        Ok(id)
    }

    /// Classifies one device against the established capable pace (the
    /// §VI.C admission rule, also applied to devices first sampled after
    /// the initial cohort): a device slower than `1.05 × deadline`
    /// becomes a straggler with a fitted volume and its own
    /// device-keyed RNG stream, so classification order never affects
    /// the draw sequence.
    fn classify_device(&mut self, env: &mut FlEnv, id: usize) -> Result<()> {
        self.classified.insert(id);
        let full_time = env.combined_cycle_time(id)?;
        if full_time.as_secs_f64() > 1.05 * self.deadline.as_secs_f64() {
            let keep = match &self.config.volume {
                VolumePolicy::Predefined(levels) => *levels.last().expect("validated non-empty"),
                VolumePolicy::ResourceFitted => {
                    let budget =
                        target::comm_adjusted_deadline(self.deadline, env.comm_overhead(id)?);
                    target::fitted_keep_ratio(env.client_mut(id)?, budget)?
                }
            };
            let units = env.client_mut(id)?.network_mut().maskable_units();
            let trainer = SoftTrainer::new(
                units,
                keep,
                self.config.p_s,
                self.config.regulation,
                TensorRng::seed_from(env.config().seed ^ (id as u64) << 8),
            )?;
            self.trainers.insert(id, trainer);
            self.stragglers.push(id);
            self.stragglers.sort_unstable();
        }
        Ok(())
    }

    /// Incremental-mode classification of a sampled cohort.
    ///
    /// The first cohort establishes the run's reference frame entirely
    /// cohort-relatively — stragglers via
    /// [`identify::resource_based_combined_cohort`], the deadline as the
    /// slowest *capable cohort member*, volumes fitted against it — at
    /// O(cohort) cost, never touching unmaterialized devices. Devices
    /// first sampled in later cohorts are measured against that
    /// established pace (`1.05 × deadline`, the admission rule); devices
    /// re-sampled later keep their classification and trainer state.
    fn classify_cohort(&mut self, env: &mut FlEnv, cohort: &[usize]) -> Result<()> {
        if !self.initialized {
            // First cohort: cohort-relative identification + deadline.
            let slowdown = match &self.config.identification {
                Identification::ResourceBased { slowdown_threshold } => *slowdown_threshold,
                Identification::TimeBased { .. } => {
                    // begin_run rejects this combination; defensive here.
                    return Err(HeliosError::InvalidConfig {
                        what: "time-based identification cannot run on sampled cohorts".into(),
                    });
                }
            };
            let mut ranked = identify::resource_based_combined_cohort(env, cohort, slowdown)?;
            let mut times: Vec<(usize, f64)> = Vec::with_capacity(ranked.len());
            for &i in &ranked {
                times.push((i, env.combined_cycle_time(i)?.as_secs_f64()));
            }
            times.sort_by(|a, b| b.1.total_cmp(&a.1));
            ranked = times.into_iter().map(|(i, _)| i).collect();
            let mut deadline = SimTime::ZERO;
            for &i in cohort {
                if !ranked.contains(&i) {
                    deadline = deadline.max(env.combined_cycle_time(i)?);
                }
            }
            self.deadline = deadline;
            let volumes: Vec<(usize, f64)> = match &self.config.volume {
                VolumePolicy::Predefined(levels) => target::assign_predefined(&ranked, levels)?,
                VolumePolicy::ResourceFitted => {
                    let mut out = Vec::with_capacity(ranked.len());
                    for &i in &ranked {
                        let budget =
                            target::comm_adjusted_deadline(deadline, env.comm_overhead(i)?);
                        let keep = target::fitted_keep_ratio(env.client_mut(i)?, budget)?;
                        out.push((i, keep));
                    }
                    out
                }
            };
            for (client, keep) in volumes {
                let units = env.client_mut(client)?.network_mut().maskable_units();
                let trainer = SoftTrainer::new(
                    units,
                    keep,
                    self.config.p_s,
                    self.config.regulation,
                    // Device-keyed stream (not a shared split chain): the
                    // same device gets the same stream regardless of
                    // which cohort first surfaced it.
                    TensorRng::seed_from(env.config().seed ^ (client as u64) << 8),
                )?;
                self.trainers.insert(client, trainer);
            }
            self.stragglers = ranked;
            self.stragglers.sort_unstable();
            self.classified.extend(cohort.iter().copied());
            self.initialized = true;
            return Ok(());
        }
        for &i in cohort {
            if !self.classified.contains(&i) {
                self.classify_device(env, i)?;
            }
        }
        Ok(())
    }
}

/// The Helios pipeline expressed as `helios_fl` round-lifecycle hooks:
/// the shared [`helios_fl::RoundDriver`] owns the cycle loop (broadcast →
/// train → route → aggregate → evaluate) while these hooks contribute the
/// §IV–§VI policy decisions. Cycles are numbered from 0 on every
/// [`helios_fl::Strategy::run`] call, so the dynamic-volume settling
/// window applies per call.
impl RoundPolicy for HeliosStrategy {
    fn name(&self) -> &str {
        match self.config.aggregation {
            AggregationMode::FullWeighted => "helios",
            AggregationMode::FullPlain => "helios_st_only",
            AggregationMode::MaskedWeighted => "helios_masked",
        }
    }

    fn begin_run(&mut self, env: &mut FlEnv) -> helios_fl::Result<()> {
        if env.sampling_enabled() {
            if matches!(self.config.identification, Identification::TimeBased { .. }) {
                return Err(to_fl_error(HeliosError::InvalidConfig {
                    what: "time-based identification benches the full fleet; \
                           use ResourceBased identification with cohort sampling"
                        .into(),
                }));
            }
            self.config.validate().map_err(to_fl_error)?;
            // Classification is deferred to the first sampled cohort.
            self.incremental = true;
            return Ok(());
        }
        // Full-fleet path: a lazy environment without sampling is
        // materialized up front (identification profiles every device).
        for i in 0..env.num_clients() {
            env.ensure_client(i)?;
        }
        self.initialize(env).map_err(to_fl_error)
    }

    /// Draws the cycle's cohort via [`FlEnv::select_cohort`]; devices
    /// appearing for the first time (newly sampled in incremental mode,
    /// or joined mid-run by scenario churn) are classified against the
    /// established capable pace before training begins. On a static
    /// fully-classified fleet this is a no-op.
    fn select(&mut self, env: &mut FlEnv, cycle: usize) -> helios_fl::Result<Vec<usize>> {
        let cohort = env.select_cohort(cycle)?;
        if self.incremental {
            self.classify_cohort(env, &cohort).map_err(to_fl_error)?;
            self.last_cohort = cohort.clone();
        } else if self.initialized {
            for &i in &cohort {
                if !self.classified.contains(&i) {
                    self.classify_device(env, i).map_err(to_fl_error)?;
                }
            }
        }
        Ok(cohort)
    }

    fn broadcast(
        &mut self,
        env: &mut FlEnv,
        cycle: usize,
        _participants: &[usize],
    ) -> helios_fl::Result<()> {
        env.broadcast_global(cycle)?;
        // The reference point for this cycle's contribution deltas.
        self.received_global = env.global().to_vec();
        Ok(())
    }

    /// Installs this cycle's soft-training mask: stragglers get their
    /// contribution-ranked sub-model, capable devices train in full. The
    /// driver's serial participant-order pass keeps the trainers' RNG
    /// streams reproducible.
    fn configure_client(
        &mut self,
        env: &mut FlEnv,
        cycle: usize,
        client: usize,
    ) -> helios_fl::Result<()> {
        if let Some(trainer) = self.trainers.get_mut(&client) {
            let mask = trainer.next_mask(self.contributions.get(&client));
            // Stash rather than observe: the skip counters settle in
            // `aggregate`, once this cycle's delivery outcome is known.
            self.issued_masks.insert(client, mask.clone());
            if helios_obs::enabled() {
                let units = env.client_mut(client)?.network_mut().maskable_units();
                let active: usize = mask.active_counts(&units).iter().sum();
                helios_obs::emit(|| helios_obs::TraceEvent::MaskIssued {
                    cycle: cycle as u64,
                    device: client as u64,
                    active_units: active as u64,
                    total_units: units.total() as u64,
                });
            }
            env.client_mut(client)?.set_masks(Some(mask))?;
        } else {
            env.client_mut(client)?.set_masks(None)?;
        }
        Ok(())
    }

    fn aggregate(
        &mut self,
        env: &mut FlEnv,
        cycle: usize,
        routed: &RoutedCycle,
    ) -> helios_fl::Result<()> {
        let updates = &routed.updates;
        // Settle this cycle's mask issuance now that the round outcome
        // is known (§VI.A): a delivered update resets its active units'
        // skip counters, while a missed cycle (update dropped or timed
        // out) increments *every* counter — the scheduled units were
        // wasted and the idle ones skipped another cycle regardless.
        for u in updates {
            if let Some(mask) = self.issued_masks.remove(&u.client) {
                if let Some(trainer) = self.trainers.get_mut(&u.client) {
                    trainer.observe(&mask);
                    helios_obs::emit(|| helios_obs::TraceEvent::SkipSettled {
                        cycle: cycle as u64,
                        device: u.client as u64,
                        delivered: true,
                    });
                }
            }
        }
        for client in &routed.missed {
            if self.issued_masks.remove(client).is_some() {
                if let Some(trainer) = self.trainers.get_mut(client) {
                    trainer.observe_missed();
                    helios_obs::emit(|| helios_obs::TraceEvent::SkipSettled {
                        cycle: cycle as u64,
                        device: *client as u64,
                        delivered: false,
                    });
                }
            }
        }
        self.issued_masks.clear();
        // Refresh contribution values U (Eq 1) for the next selection.
        for u in updates {
            if self.trainers.contains_key(&u.client) {
                let client = env.client_mut(u.client)?;
                let layout = client.network_mut().layout();
                let units = client.network_mut().maskable_units();
                let c = contributions_from_delta(&layout, &units, &self.received_global, &u.params);
                self.contributions.insert(u.client, c);
            }
        }
        // §VI.B model aggregation (see AggregationMode).
        let weighted = self.config.aggregation != AggregationMode::FullPlain;
        let weights: Vec<f64> = if weighted {
            let ratios: Vec<f64> = updates.iter().map(|u| u.keep_ratio).collect();
            let samples: Vec<usize> = updates.iter().map(|u| u.num_samples).collect();
            aggregation::combined_weights(&ratios, &samples)
        } else {
            updates.iter().map(|u| u.num_samples as f64).collect()
        };
        let masked_upload = self.config.aggregation == AggregationMode::MaskedWeighted;
        let mut global = env.global().to_vec();
        // Stream the fold: one update at a time through the online
        // accumulator (bitwise identical to collect-then-average, which
        // is built on the same primitive) — O(model) server state even
        // for fleet-scale cohorts.
        let mut acc = OnlineAggregator::new(global.len());
        for (u, &w) in updates.iter().zip(&weights) {
            acc.push(&MaskedUpdate {
                params: &u.params,
                param_mask: if masked_upload {
                    u.param_mask.as_deref()
                } else {
                    None
                },
                weight: w,
            });
        }
        acc.finish_into(&mut global);
        env.set_global(global)
    }

    /// Dynamic volume adjustment toward the capable pace, during the
    /// settling window only. The observed pace is the combined
    /// masked-compute + link time — what the server actually waits on.
    fn post_cycle(&mut self, env: &mut FlEnv, cycle: usize) -> helios_fl::Result<()> {
        if cycle >= self.config.dynamic_volume_cycles {
            return Ok(());
        }
        let deadline = self.deadline;
        if self.incremental {
            // Cohort-relative: only this cycle's participants were
            // observed (and only they are guaranteed materialized).
            for &i in &self.last_cohort {
                if let Some(trainer) = self.trainers.get_mut(&i) {
                    let masked_time = env.combined_cycle_time(i)?;
                    let next = target::adjust_keep_ratio(trainer.keep(), masked_time, deadline);
                    if (next - trainer.keep()).abs() > 1e-9 {
                        trainer.set_keep(next).map_err(to_fl_error)?;
                    }
                }
            }
            return Ok(());
        }
        for i in 0..env.num_clients() {
            if let Some(trainer) = self.trainers.get_mut(&i) {
                let masked_time = env.combined_cycle_time(i)?;
                let next = target::adjust_keep_ratio(trainer.keep(), masked_time, deadline);
                if (next - trainer.keep()).abs() > 1e-9 {
                    trainer.set_keep(next).map_err(to_fl_error)?;
                }
            }
        }
        Ok(())
    }
}

/// Adapts Helios errors onto the `helios_fl` error type so
/// [`HeliosStrategy`] satisfies the shared [`Strategy`] signature.
fn to_fl_error(e: HeliosError) -> helios_fl::FlError {
    match e {
        HeliosError::Fl(inner) => inner,
        other => helios_fl::FlError::InvalidStrategyConfig {
            what: other.to_string(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helios_data::{partition, Dataset, SyntheticVision};
    use helios_device::presets;
    use helios_fl::{FlConfig, Strategy, SyncFedAvg};
    use helios_nn::models::ModelKind;

    fn env(capable: usize, stragglers: usize, seed: u64) -> FlEnv {
        let mut rng = TensorRng::seed_from(seed);
        let clients = capable + stragglers;
        let (train, test) = SyntheticVision::mnist_like()
            .generate(60 * clients, 60, &mut rng)
            .unwrap();
        let shards: Vec<Dataset> = partition::iid(train.len(), clients, &mut rng)
            .into_iter()
            .map(|idx| train.subset(&idx).unwrap())
            .collect();
        FlEnv::new(
            ModelKind::LeNet,
            presets::mixed_fleet(capable, stragglers),
            shards,
            test,
            FlConfig {
                seed,
                ..FlConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn initialization_finds_stragglers_and_volumes() {
        let mut e = env(2, 2, 70);
        let mut h = HeliosStrategy::new(HeliosConfig::default());
        h.initialize(&mut e).unwrap();
        assert_eq!(h.stragglers(), &[2, 3]);
        for &s in &[2usize, 3] {
            let keep = h.keep_ratio(s).unwrap();
            assert!(keep < 1.0, "straggler {s} keep {keep} should shrink");
            assert!(keep >= target::MIN_KEEP_RATIO);
        }
        assert!(h.keep_ratio(0).is_none());
        assert!(h.deadline() > SimTime::ZERO);
        // Idempotent.
        let before = h.stragglers().to_vec();
        h.initialize(&mut e).unwrap();
        assert_eq!(h.stragglers(), &before[..]);
    }

    #[test]
    fn helios_keeps_pace_with_capable_devices() {
        let mut e = env(1, 1, 71);
        let mut sync_env = env(1, 1, 71);
        let mh = HeliosStrategy::new(HeliosConfig::default())
            .run(&mut e, 4)
            .unwrap();
        let ms = SyncFedAvg::new().run(&mut sync_env, 4).unwrap();
        assert!(
            mh.total_time().as_secs_f64() < 0.5 * ms.total_time().as_secs_f64(),
            "helios {} should be much faster than sync {}",
            mh.total_time(),
            ms.total_time()
        );
    }

    #[test]
    fn helios_learns() {
        let mut e = env(1, 1, 72);
        let m = HeliosStrategy::new(HeliosConfig::default())
            .run(&mut e, 8)
            .unwrap();
        assert!(m.best_accuracy() > 0.45, "accuracy {}", m.best_accuracy());
    }

    #[test]
    fn st_only_uses_plain_weights_and_different_name() {
        let h = HeliosStrategy::new(HeliosConfig::soft_training_only());
        assert_eq!(Strategy::name(&h), "helios_st_only");
        let h = HeliosStrategy::new(HeliosConfig::default());
        assert_eq!(Strategy::name(&h), "helios");
    }

    #[test]
    fn time_based_identification_matches_resource_based() {
        let mut e1 = env(2, 2, 73);
        let mut e2 = env(2, 2, 73);
        let mut a = HeliosStrategy::new(HeliosConfig {
            identification: Identification::TimeBased {
                iterations: 2,
                top_k: 2,
            },
            ..HeliosConfig::default()
        });
        let mut b = HeliosStrategy::new(HeliosConfig::default());
        a.initialize(&mut e1).unwrap();
        b.initialize(&mut e2).unwrap();
        assert_eq!(a.stragglers(), b.stragglers());
    }

    #[test]
    fn predefined_volumes_are_applied() {
        let mut e = env(2, 2, 74);
        let mut h = HeliosStrategy::new(HeliosConfig {
            volume: VolumePolicy::Predefined(vec![0.2, 0.4]),
            dynamic_volume_cycles: 0,
            ..HeliosConfig::default()
        });
        h.initialize(&mut e).unwrap();
        // Slowest straggler (client 3, deeplens-like) gets 0.2.
        let k2 = h.keep_ratio(2).unwrap();
        let k3 = h.keep_ratio(3).unwrap();
        assert!(k3 <= k2, "slowest gets smallest: {k3} vs {k2}");
        assert!((k3 - 0.2).abs() < 1e-9 || (k2 - 0.2).abs() < 1e-9);
    }

    #[test]
    fn dynamic_volume_reacts_to_pace() {
        let mut e = env(1, 1, 75);
        let mut h = HeliosStrategy::new(HeliosConfig {
            volume: VolumePolicy::Predefined(vec![0.9]), // deliberately too big
            ..HeliosConfig::default()
        });
        h.initialize(&mut e).unwrap();
        let before = h.keep_ratio(1).unwrap();
        let _ = h.run(&mut e, 3).unwrap();
        let after = h.keep_ratio(1).unwrap();
        assert!(
            after < before,
            "oversized volume should shrink: {before} → {after}"
        );
    }

    #[test]
    fn admit_device_classifies_newcomers() {
        let mut e = env(1, 1, 76);
        let mut h = HeliosStrategy::new(HeliosConfig::default());
        // Must initialize first.
        let mut rng = TensorRng::seed_from(99);
        let (extra, _) = SyntheticVision::mnist_like()
            .generate(30, 0, &mut rng)
            .unwrap();
        assert!(h
            .admit_device(&mut e, presets::raspberry_pi(), extra.clone())
            .is_err());
        let _ = h.run(&mut e, 2).unwrap();
        // A straggler-class newcomer gets a volume.
        let id = h
            .admit_device(&mut e, presets::raspberry_pi(), extra.clone())
            .unwrap();
        assert!(h.stragglers().contains(&id));
        assert!(h.keep_ratio(id).unwrap() < 1.0);
        // A capable-class newcomer does not.
        let id2 = h
            .admit_device(&mut e, presets::jetson_nano(), extra)
            .unwrap();
        assert!(!h.stragglers().contains(&id2));
        assert!(h.keep_ratio(id2).is_none());
        // The enlarged fleet still runs.
        let m = h.run(&mut e, 2).unwrap();
        assert_eq!(m.records().last().unwrap().participants, 4);
    }

    fn lazy_env(population: usize, seed: u64, sampling: helios_fl::SamplerConfig) -> FlEnv {
        let spec = helios_fl::FleetSpec::new(
            population,
            helios_device::ProfileSynthesizer::new(seed, 0.5),
            helios_data::ShardSynthesizer::new(SyntheticVision::mnist_like(), 8, seed).unwrap(),
        );
        let test = spec.shards.test_set(40).unwrap();
        FlEnv::new_lazy(
            ModelKind::LeNet,
            spec,
            test,
            FlConfig {
                seed,
                sampling,
                ..FlConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn sampled_cohorts_classify_incrementally_and_deterministically() {
        let sampling = helios_fl::SamplerConfig::uniform(6);
        let mut a = lazy_env(16, 81, sampling);
        let mut b = lazy_env(16, 81, sampling);
        let mut ha = HeliosStrategy::new(HeliosConfig::default());
        let mut hb = HeliosStrategy::new(HeliosConfig::default());
        let ma = ha.run(&mut a, 3).unwrap();
        let mb = hb.run(&mut b, 3).unwrap();
        assert_eq!(ma.records(), mb.records(), "sampled runs must replay");
        for r in ma.records() {
            assert_eq!(r.participants, 6, "every cycle trains the cohort");
        }
        // Stragglers identified on the sampled cohorts carry shrunken
        // volumes; capable cohort members carry none.
        assert!(!ha.stragglers().is_empty(), "mixed cohort has stragglers");
        for &s in ha.stragglers() {
            let keep = ha.keep_ratio(s).unwrap();
            assert!(keep < 1.0, "straggler {s} keep {keep}");
        }
        // Only sampled devices were ever instantiated.
        assert!(a.materialized_clients() < 16);
    }

    #[test]
    fn time_based_identification_rejected_with_sampling() {
        let mut e = lazy_env(16, 82, helios_fl::SamplerConfig::uniform(6));
        let mut h = HeliosStrategy::new(HeliosConfig {
            identification: Identification::TimeBased {
                iterations: 2,
                top_k: 2,
            },
            ..HeliosConfig::default()
        });
        let err = h.run(&mut e, 1);
        assert!(err.is_err(), "time-based + sampling must be rejected");
    }

    #[test]
    fn helios_run_is_deterministic() {
        let mut a = env(1, 1, 77);
        let mut b = env(1, 1, 77);
        let ma = HeliosStrategy::new(HeliosConfig::default())
            .run(&mut a, 4)
            .unwrap();
        let mb = HeliosStrategy::new(HeliosConfig::default())
            .run(&mut b, 4)
            .unwrap();
        assert_eq!(ma.records(), mb.records());
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut e = env(1, 1, 78);
        let mut h = HeliosStrategy::new(HeliosConfig {
            p_s: 2.0,
            ..HeliosConfig::default()
        });
        assert!(h.run(&mut e, 1).is_err());
        let mut h = HeliosStrategy::new(HeliosConfig {
            volume: VolumePolicy::Predefined(vec![]),
            ..HeliosConfig::default()
        });
        assert!(h.run(&mut e, 1).is_err());
    }
}
