//! Numeric checks of the soft-training convergence analysis (§V.B).
//!
//! The paper bounds the gradient variance of soft-training (Prop 2): with
//! per-neuron selection probabilities `p_i`, the unbiased masked gradient
//! `ST(g)_i = D_i · g_i / p_i` has second moment `Σ g_i² / p_i` (Eq 6),
//! and keeping the top-`v` gradient coordinates at probability 1 bounds
//! the expected active count by `(1 + ρ)·v` (Eq 9). These functions
//! evaluate both sides of those inequalities so tests and the ablation
//! bench can verify the conditions numerically rather than taking them on
//! faith.

/// Second moment of the soft-training gradient estimator (Eq 6):
/// `E‖ST(g)‖² = Σ g_i² / p_i`.
///
/// # Panics
///
/// Panics if the slices have different lengths or any probability is
/// outside `(0, 1]` — the paper's condition that "each neuron shouldn't
/// be inactivated for the long term" (`p_i > 0`).
pub fn masked_gradient_second_moment(g: &[f32], p: &[f64]) -> f64 {
    assert_eq!(g.len(), p.len(), "gradient and probability lengths differ");
    g.iter()
        .zip(p)
        .map(|(&gi, &pi)| {
            assert!(pi > 0.0 && pi <= 1.0, "p_i must be in (0, 1], got {pi}");
            (gi as f64).powi(2) / pi
        })
        .sum()
}

/// The variance-control constraint of Eq 7: whether
/// `Σ g_i²/p_i ≤ (1 + ε)·Σ g_i²`.
pub fn variance_constraint_holds(g: &[f32], p: &[f64], epsilon: f64) -> bool {
    let lhs = masked_gradient_second_moment(g, p);
    let rhs = (1.0 + epsilon) * g.iter().map(|&x| (x as f64).powi(2)).sum::<f64>();
    lhs <= rhs + 1e-9
}

/// Constructs the paper's selection probabilities for the Eq 8 condition:
/// the `v` largest-magnitude coordinates get `p_i = 1`; the rest get
/// `p_i = |g_i| / λ` clipped to `[p_floor, 1]`.
///
/// `λ` is chosen as the magnitude of the `v`-th largest coordinate, so
/// probabilities decay with gradient magnitude below the kept set —
/// matching the proof's `|g_(i)| / λ` form.
///
/// # Panics
///
/// Panics if `v` is zero or exceeds the gradient length, or `p_floor` is
/// outside `(0, 1]`.
pub fn topv_selection_probabilities(g: &[f32], v: usize, p_floor: f64) -> Vec<f64> {
    assert!(v > 0 && v <= g.len(), "v must be in 1..={}", g.len());
    assert!(
        p_floor > 0.0 && p_floor <= 1.0,
        "p_floor must be in (0, 1], got {p_floor}"
    );
    let mut order: Vec<usize> = (0..g.len()).collect();
    let key = |x: f32| {
        if x.is_nan() {
            f32::NEG_INFINITY
        } else {
            x.abs()
        }
    };
    order.sort_by(|&a, &b| key(g[b]).total_cmp(&key(g[a])));
    let lambda = g[order[v - 1]].abs().max(f32::EPSILON) as f64;
    let mut p = vec![0.0f64; g.len()];
    for (rank, &i) in order.iter().enumerate() {
        p[i] = if rank < v {
            1.0
        } else {
            ((g[i].abs() as f64) / lambda).clamp(p_floor, 1.0)
        };
    }
    p
}

/// Solves the paper's Eq 7 trade-off directly: minimize the expected
/// active count `Σ p_i` subject to the variance constraint
/// `Σ g_i²/p_i ≤ (1 + ε)·Σ g_i²`, with `p_i ∈ (0, 1]`.
///
/// By the KKT conditions the optimum has `p_i = min(1, |g_i|/λ)` for a
/// single multiplier `λ > 0` (larger gradients ⇒ certain selection,
/// smaller ones ⇒ proportional probability) — the closed form behind the
/// paper's Eq 8 condition. `λ` is found by bisection on the monotone
/// constraint residual.
///
/// Returns the probability vector; `ε = 0` forces `p_i = 1` everywhere.
///
/// # Panics
///
/// Panics if `epsilon` is negative/not finite or `g` is empty or
/// all-zero.
pub fn optimal_selection_probabilities(g: &[f32], epsilon: f64) -> Vec<f64> {
    assert!(
        epsilon.is_finite() && epsilon >= 0.0,
        "epsilon must be non-negative and finite, got {epsilon}"
    );
    assert!(!g.is_empty(), "gradient vector must be non-empty");
    let total: f64 = g.iter().map(|&x| (x as f64).powi(2)).sum();
    assert!(total > 0.0, "gradient vector must not be all-zero");
    if epsilon == 0.0 {
        return vec![1.0; g.len()];
    }
    let budget = (1.0 + epsilon) * total;
    let probs = |lambda: f64| -> Vec<f64> {
        g.iter()
            .map(|&x| ((x.abs() as f64) / lambda).clamp(1e-12, 1.0))
            .collect()
    };
    let second_moment = |p: &[f64]| -> f64 {
        g.iter()
            .zip(p)
            .map(|(&x, &pi)| (x as f64).powi(2) / pi)
            .sum()
    };
    // Bisection: larger λ → smaller p → larger second moment (monotone).
    let gmax = g.iter().map(|x| x.abs() as f64).fold(0.0, f64::max);
    let (mut lo, mut hi) = (gmax * 1e-9, gmax * 1e9);
    for _ in 0..200 {
        let mid = (lo * hi).sqrt();
        if second_moment(&probs(mid)) <= budget {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    probs(lo)
}

/// Expected number of active neurons `E‖ST(g)‖₀ = Σ p_i` — the left side
/// of Eq 9.
pub fn expected_active_count(p: &[f64]) -> f64 {
    p.iter().sum()
}

/// The Eq 9 bound `(1 + ρ)·v` on the expected active count.
pub fn active_count_bound(v: usize, rho: f64) -> f64 {
    (1.0 + rho) * v as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use helios_tensor::TensorRng;

    fn random_gradient(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = TensorRng::seed_from(seed);
        (0..n).map(|_| rng.standard_normal()).collect()
    }

    #[test]
    fn full_selection_recovers_plain_second_moment() {
        let g = random_gradient(64, 1);
        let p = vec![1.0; 64];
        let expected: f64 = g.iter().map(|&x| (x as f64).powi(2)).sum();
        assert!((masked_gradient_second_moment(&g, &p) - expected).abs() < 1e-9);
        assert!(variance_constraint_holds(&g, &p, 0.0));
    }

    #[test]
    fn lower_probability_inflates_variance() {
        let g = random_gradient(32, 2);
        let half = vec![0.5; 32];
        let full = vec![1.0; 32];
        assert!(
            masked_gradient_second_moment(&g, &half) > masked_gradient_second_moment(&g, &full)
        );
        // p = 0.5 doubles the second moment → ε must be ≥ 1.
        assert!(!variance_constraint_holds(&g, &half, 0.5));
        assert!(variance_constraint_holds(&g, &half, 1.0));
    }

    #[test]
    #[should_panic(expected = "p_i must be in")]
    fn zero_probability_panics() {
        let _ = masked_gradient_second_moment(&[1.0], &[0.0]);
    }

    #[test]
    fn topv_probabilities_keep_top_coordinates() {
        let g = vec![0.1f32, 5.0, 0.2, 3.0, 0.05];
        let p = topv_selection_probabilities(&g, 2, 0.01);
        assert_eq!(p[1], 1.0);
        assert_eq!(p[3], 1.0);
        for (i, &pi) in p.iter().enumerate() {
            if i != 1 && i != 3 {
                assert!(pi < 1.0, "non-top coordinate {i} got p = {pi}");
                assert!(pi >= 0.01);
            }
        }
    }

    #[test]
    fn eq9_bound_holds_for_generic_gradients() {
        // Keeping the top v coordinates with decaying probabilities below
        // keeps the expected active count within (1 + ρ)·v for a modest ρ,
        // because sub-threshold probabilities fall off with |g|/λ.
        for seed in 0..10 {
            let g = random_gradient(256, seed);
            let v = 64;
            let p = topv_selection_probabilities(&g, v, 0.001);
            let active = expected_active_count(&p);
            // ρ derived from the realized tail mass; Eq 9's point is that
            // this stays a small multiple of v rather than m.
            let rho = active / v as f64 - 1.0;
            assert!(active >= v as f64, "top set alone is v");
            assert!(
                active <= active_count_bound(v, rho) + 1e-9,
                "bound violated by construction"
            );
            assert!(
                rho < 1.5,
                "seed {seed}: expected active {active} too far above v={v}"
            );
        }
    }

    #[test]
    fn optimal_probabilities_satisfy_constraint_tightly() {
        for seed in 0..5 {
            let g = random_gradient(128, seed);
            for &eps in &[0.25f64, 0.5, 1.0, 2.0] {
                let p = optimal_selection_probabilities(&g, eps);
                assert!(p.iter().all(|&pi| pi > 0.0 && pi <= 1.0));
                assert!(
                    variance_constraint_holds(&g, &p, eps * 1.001),
                    "seed {seed}, eps {eps}: constraint violated"
                );
                // Tightness: the constraint binds within 1% (otherwise we
                // could shrink probabilities further).
                let lhs = masked_gradient_second_moment(&g, &p);
                let budget: f64 = (1.0 + eps) * g.iter().map(|&x| (x as f64).powi(2)).sum::<f64>();
                assert!(
                    lhs > 0.98 * budget || p.iter().all(|&pi| pi >= 1.0 - 1e-9),
                    "seed {seed}, eps {eps}: slack too large ({lhs} vs {budget})"
                );
            }
        }
    }

    #[test]
    fn optimal_probabilities_scale_with_gradient_magnitude() {
        let g = vec![4.0f32, 2.0, 1.0, 0.5, 0.25];
        let p = optimal_selection_probabilities(&g, 1.0);
        for w in p.windows(2) {
            assert!(w[0] >= w[1] - 1e-12, "larger |g| gets larger p: {p:?}");
        }
        // Sub-threshold probabilities are proportional to |g|.
        if p[3] < 1.0 && p[4] < 1.0 {
            assert!((p[3] / p[4] - 2.0).abs() < 1e-6);
        }
    }

    #[test]
    fn optimal_probabilities_edge_cases() {
        // ε = 0: full participation.
        let g = vec![1.0f32, 2.0];
        assert_eq!(optimal_selection_probabilities(&g, 0.0), vec![1.0, 1.0]);
        // Larger ε permits fewer expected activations.
        let g = random_gradient(64, 9);
        let tight = expected_active_count(&optimal_selection_probabilities(&g, 0.5));
        let loose = expected_active_count(&optimal_selection_probabilities(&g, 4.0));
        assert!(loose < tight);
    }

    #[test]
    #[should_panic(expected = "all-zero")]
    fn optimal_probabilities_reject_zero_gradient() {
        let _ = optimal_selection_probabilities(&[0.0, 0.0], 1.0);
    }

    #[test]
    fn variance_decreases_as_v_grows() {
        // More guaranteed neurons → smaller estimator variance (the
        // trade-off behind the paper's P_s choice, §VI.A).
        let g = random_gradient(128, 7);
        let m64 = masked_gradient_second_moment(&g, &topv_selection_probabilities(&g, 64, 0.01));
        let m16 = masked_gradient_second_moment(&g, &topv_selection_probabilities(&g, 16, 0.01));
        assert!(m64 < m16, "v=64 ({m64}) should beat v=16 ({m16})");
    }
}
