//! Optimization-target determination (§IV.C): the expected model volume
//! of each straggler.

use crate::{HeliosError, Result};
use helios_device::{CostModel, SimTime};
use helios_fl::Client;
use helios_nn::{MaskableUnits, ModelMask};

/// Default predefined volume ladder (§IV.C "multiple model volume levels
/// in advance"): entry 0 is handed to the slowest straggler.
pub const DEFAULT_VOLUME_LEVELS: [f64; 4] = [0.25, 0.35, 0.5, 0.65];

/// Smallest keep ratio the planner will ever assign; below this the
/// sub-model degenerates (one neuron per layer carries no information).
pub const MIN_KEEP_RATIO: f64 = 0.05;

/// Per-layer active-unit counts for a uniform keep ratio `keep`:
/// `ceil(keep · n_i)`, at least 1 (the paper's `P_i n_i` with a common
/// `P_i = keep`).
pub fn keep_counts(units: &MaskableUnits, keep: f64) -> Vec<usize> {
    units
        .0
        .iter()
        .map(|&n| ((keep * n as f64).ceil() as usize).clamp(1, n))
        .collect()
}

/// A deterministic probe mask keeping the first `ceil(keep · n_i)` units
/// of every layer — used only to evaluate the cost model, which depends on
/// active *counts*, not on which units are active.
pub fn probe_mask(units: &MaskableUnits, keep: f64) -> ModelMask {
    let counts = keep_counts(units, keep);
    let mut mask = ModelMask::all_active(units);
    for (i, (&n, &k)) in units.0.iter().zip(&counts).enumerate() {
        mask.set_layer(i, Some((0..n).map(|j| j < k).collect()));
    }
    mask
}

/// Simulated cycle time of `client` under a uniform keep ratio; restores
/// the client's previous mask before returning.
///
/// # Errors
///
/// Propagates mask-installation errors (impossible for well-formed
/// ratios).
pub fn masked_cycle_time(client: &mut Client, keep: f64) -> Result<SimTime> {
    let saved = client.current_mask().cloned();
    let units = client.network_mut().maskable_units();
    client
        .set_masks(Some(probe_mask(&units, keep)))
        .map_err(HeliosError::from)?;
    let t = client.cycle_time();
    client.set_masks(saved).map_err(HeliosError::from)?;
    Ok(t)
}

/// *Resource-fitted* volume determination: the largest keep ratio whose
/// masked cycle time meets `deadline` and whose training footprint fits
/// the device memory (binary search against the analytic cost model, the
/// white-box path of §IV.C).
///
/// # Errors
///
/// Returns [`HeliosError::InfeasibleVolume`] when even the minimum volume
/// ([`MIN_KEEP_RATIO`]) misses the deadline or memory budget.
pub fn fitted_keep_ratio(client: &mut Client, deadline: SimTime) -> Result<f64> {
    let fits = |client: &mut Client, keep: f64| -> Result<bool> {
        let t = masked_cycle_time(client, keep)?;
        if t > deadline {
            return Ok(false);
        }
        // Memory check uses the same workload scaling as the time model.
        let saved = client.current_mask().cloned();
        let units = client.network_mut().maskable_units();
        client
            .set_masks(Some(probe_mask(&units, keep)))
            .map_err(HeliosError::from)?;
        let resident = client.scaled_resident_bytes();
        let ok = CostModel::fits_memory(client.profile(), resident);
        client.set_masks(saved).map_err(HeliosError::from)?;
        Ok(ok)
    };
    if fits(client, 1.0)? {
        return Ok(1.0);
    }
    if !fits(client, MIN_KEEP_RATIO)? {
        return Err(HeliosError::InfeasibleVolume {
            client: client.id(),
            what: format!(
                "minimum volume {MIN_KEEP_RATIO} still misses deadline {deadline} \
                 or memory budget"
            ),
        });
    }
    let (mut lo, mut hi) = (MIN_KEEP_RATIO, 1.0f64);
    for _ in 0..24 {
        let mid = 0.5 * (lo + hi);
        if fits(client, mid)? {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(lo)
}

/// *Predefined-level* volume determination: stragglers ranked slowest
/// first receive [`DEFAULT_VOLUME_LEVELS`]-style ladders (slowest gets the
/// smallest volume; extras reuse the last level).
///
/// # Errors
///
/// Returns [`HeliosError::InvalidConfig`] when `levels` is empty or holds
/// a ratio outside `(0, 1]`.
pub fn assign_predefined(ranked_stragglers: &[usize], levels: &[f64]) -> Result<Vec<(usize, f64)>> {
    if levels.is_empty() {
        return Err(HeliosError::InvalidConfig {
            what: "volume levels must not be empty".into(),
        });
    }
    for &l in levels {
        if !(l > 0.0 && l <= 1.0) {
            return Err(HeliosError::InvalidConfig {
                what: format!("volume level {l} outside (0, 1]"),
            });
        }
    }
    Ok(ranked_stragglers
        .iter()
        .enumerate()
        .map(|(rank, &client)| (client, levels[rank.min(levels.len() - 1)]))
        .collect())
}

/// The compute budget left for local training once a device's expected
/// communication time is taken out of the collaboration deadline.
/// Saturates at zero (via `SimTime`'s saturating subtraction) when the
/// link alone overruns the deadline — fitting against a zero budget then
/// reports the volume as infeasible, which is the honest answer. With an
/// ideal link (`comm == 0`) this is the identity, so networking-disabled
/// runs fit against the unchanged deadline.
pub fn comm_adjusted_deadline(deadline: SimTime, comm: SimTime) -> SimTime {
    deadline - comm
}

/// One step of the dynamic volume adjustment the paper applies during the
/// first training cycles: a proportional controller nudging the keep
/// ratio so the straggler's masked time converges to the capable pace.
///
/// Returns the adjusted keep ratio in `[MIN_KEEP_RATIO, 1]`.
pub fn adjust_keep_ratio(current: f64, masked_time: SimTime, deadline: SimTime) -> f64 {
    let t = masked_time.as_secs_f64();
    let d = deadline.as_secs_f64();
    if d <= 0.0 || t <= 0.0 {
        return current.clamp(MIN_KEEP_RATIO, 1.0);
    }
    let next = if t > d {
        // Too slow: shrink proportionally, with margin.
        current * (d / t) * 0.95
    } else if t < 0.8 * d {
        // Comfortable headroom: grow the sub-model to use it.
        (current * 1.1).min(current + 0.1)
    } else {
        current
    };
    next.clamp(MIN_KEEP_RATIO, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use helios_data::SyntheticVision;
    use helios_device::presets;
    use helios_nn::models;
    use helios_tensor::TensorRng;

    fn client(profile: helios_device::ResourceProfile) -> Client {
        let mut rng = TensorRng::seed_from(60);
        let net = models::lenet(10, &mut rng);
        let (train, _) = SyntheticVision::mnist_like()
            .generate(48, 0, &mut rng)
            .unwrap();
        Client::new(1, net, train, profile, 0.05, 0.9, 16, 1, 2000.0, rng)
    }

    #[test]
    fn keep_counts_round_up_and_clamp() {
        let units = MaskableUnits(vec![8, 64]);
        assert_eq!(keep_counts(&units, 0.5), vec![4, 32]);
        assert_eq!(keep_counts(&units, 0.01), vec![1, 1]);
        assert_eq!(keep_counts(&units, 1.0), vec![8, 64]);
        assert_eq!(keep_counts(&units, 0.33), vec![3, 22]);
    }

    #[test]
    fn probe_mask_matches_counts() {
        let units = MaskableUnits(vec![8, 64]);
        let mask = probe_mask(&units, 0.25);
        assert_eq!(mask.active_counts(&units), vec![2, 16]);
    }

    #[test]
    fn masked_cycle_time_is_monotone_in_volume() {
        let mut c = client(presets::deeplens_cpu());
        let t25 = masked_cycle_time(&mut c, 0.25).unwrap();
        let t50 = masked_cycle_time(&mut c, 0.5).unwrap();
        let t100 = masked_cycle_time(&mut c, 1.0).unwrap();
        assert!(t25 < t50);
        assert!(t50 < t100);
        // Probe restored the client's (empty) mask.
        assert!(c.current_mask().is_none());
    }

    #[test]
    fn fitted_ratio_meets_deadline_maximally() {
        let mut c = client(presets::deeplens_cpu());
        let full = c.cycle_time();
        let deadline = SimTime::from_secs(full.as_secs_f64() / 3.0);
        let keep = fitted_keep_ratio(&mut c, deadline).unwrap();
        assert!(keep < 1.0);
        assert!(keep >= MIN_KEEP_RATIO);
        let t = masked_cycle_time(&mut c, keep).unwrap();
        assert!(t <= deadline, "fitted volume must meet deadline");
        // Maximality: 25% more volume should overshoot.
        let t_bigger = masked_cycle_time(&mut c, (keep * 1.25).min(1.0)).unwrap();
        assert!(t_bigger > deadline);
    }

    #[test]
    fn fitted_ratio_full_model_when_deadline_is_loose() {
        let mut c = client(presets::jetson_nano());
        let full = c.cycle_time();
        let deadline = SimTime::from_secs(full.as_secs_f64() * 2.0);
        assert_eq!(fitted_keep_ratio(&mut c, deadline).unwrap(), 1.0);
    }

    #[test]
    fn fitted_ratio_errors_when_infeasible() {
        let mut c = client(presets::deeplens_cpu());
        let err = fitted_keep_ratio(&mut c, SimTime::from_secs(1e-6));
        assert!(matches!(err, Err(HeliosError::InfeasibleVolume { .. })));
    }

    #[test]
    fn predefined_assignment_ladders_by_rank() {
        let out = assign_predefined(&[7, 3, 9], &[0.25, 0.5]).unwrap();
        assert_eq!(out, vec![(7, 0.25), (3, 0.5), (9, 0.5)]);
        assert!(assign_predefined(&[1], &[]).is_err());
        assert!(assign_predefined(&[1], &[1.5]).is_err());
    }

    #[test]
    fn adjustment_controller_converges_toward_deadline() {
        let d = SimTime::from_secs(100.0);
        // Too slow: shrink.
        let down = adjust_keep_ratio(0.8, SimTime::from_secs(200.0), d);
        assert!(down < 0.8 * 0.55, "should shrink roughly by time ratio");
        // Comfortable: grow, bounded.
        let up = adjust_keep_ratio(0.5, SimTime::from_secs(50.0), d);
        assert!(up > 0.5 && up <= 0.6);
        // In band: hold.
        let hold = adjust_keep_ratio(0.5, SimTime::from_secs(90.0), d);
        assert_eq!(hold, 0.5);
        // Clamps.
        let floor = adjust_keep_ratio(0.06, SimTime::from_secs(1e6), d);
        assert_eq!(floor, MIN_KEEP_RATIO);
    }
}
