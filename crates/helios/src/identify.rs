//! Straggler identification (§IV.B): time-based approximation and
//! resource-based profiling.

use crate::{HeliosError, Result};
use helios_device::{CostModel, ResourceProfile, SimTime, TrainingWorkload};
use helios_fl::FlEnv;

/// A device's rank entry in the time index `T` of the paper: devices
/// sorted by test-bench time, longest first.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeIndexEntry {
    /// Client index.
    pub client: usize,
    /// Measured (simulated) test-bench duration.
    pub time: SimTime,
}

/// Runs the lightweight test bench of the *time-based approximation*
/// (black box): every device "trains a few iterations" and reports its
/// duration. In the simulation the measurement comes from the analytic
/// cost model applied to `iterations` mini-batches of the device's model
/// under its current mask state (full model during identification).
///
/// Returns the paper's index `T`: entries sorted by time, longest first.
///
/// # Errors
///
/// Returns an error when a client is missing (impossible under normal
/// use).
pub fn test_bench_index(env: &FlEnv, iterations: usize) -> Result<Vec<TimeIndexEntry>> {
    let mut entries = Vec::with_capacity(env.num_clients());
    for i in 0..env.num_clients() {
        let client = env.client(i).map_err(HeliosError::from)?;
        // One full cycle covers `batches × epochs` iterations; scale to
        // the requested bench length.
        let full = client.cycle_workload();
        let batches = client
            .num_samples()
            .div_ceil(env.config().batch_size)
            .max(1)
            * env.config().local_epochs;
        let frac = iterations as f64 / batches as f64;
        let bench = full.scaled(frac.clamp(f64::MIN_POSITIVE, 1.0));
        // The black-box measurement includes shipping the bench model
        // over the device's link — a fast CPU behind a weak uplink still
        // reads as slow, exactly what the server observes in practice.
        // Zero when networking is disabled.
        let comm = env.comm_overhead(i).map_err(HeliosError::from)?;
        entries.push(TimeIndexEntry {
            client: i,
            time: CostModel::time_for(client.profile(), &bench) + comm,
        });
    }
    // `total_cmp` on the inner f64 is a total order, so sorting cannot
    // panic; SimTime already guarantees finiteness.
    entries.sort_by(|a, b| b.time.as_secs_f64().total_cmp(&a.time.as_secs_f64()));
    Ok(entries)
}

/// *Time-based approximation*: the top-`k` devices of the time index are
/// declared potential stragglers.
///
/// # Errors
///
/// Returns [`HeliosError::Identification`] when `k` is zero or not
/// smaller than the fleet (at least one capable device must remain).
pub fn time_based(env: &FlEnv, iterations: usize, k: usize) -> Result<Vec<usize>> {
    if k == 0 {
        return Err(HeliosError::Identification {
            what: "top-k must be nonzero".into(),
        });
    }
    if k >= env.num_clients() {
        return Err(HeliosError::Identification {
            what: format!(
                "top-{k} of {} devices leaves no capable device",
                env.num_clients()
            ),
        });
    }
    let index = test_bench_index(env, iterations)?;
    let mut ids: Vec<usize> = index.iter().take(k).map(|e| e.client).collect();
    ids.sort_unstable();
    Ok(ids)
}

/// *Resource-based profiling* (white box): evaluates the full cost model
/// on every device's [`ResourceProfile`] and declares stragglers to be the
/// devices more than `slowdown_threshold` times slower than the fastest
/// device on the same workload.
///
/// # Errors
///
/// Returns [`HeliosError::Identification`] when the threshold is not
/// greater than 1, or when every device would be a straggler.
pub fn resource_based(
    profiles: &[&ResourceProfile],
    workload: &TrainingWorkload,
    slowdown_threshold: f64,
) -> Result<Vec<usize>> {
    if !(slowdown_threshold > 1.0 && slowdown_threshold.is_finite()) {
        return Err(HeliosError::Identification {
            what: format!("slowdown threshold {slowdown_threshold} must exceed 1"),
        });
    }
    if profiles.is_empty() {
        return Err(HeliosError::Identification {
            what: "empty fleet".into(),
        });
    }
    let times: Vec<f64> = profiles
        .iter()
        .map(|p| CostModel::time_for(p, workload).as_secs_f64())
        .collect();
    let fastest = times.iter().copied().fold(f64::INFINITY, f64::min);
    let stragglers: Vec<usize> = times
        .iter()
        .enumerate()
        .filter(|(_, &t)| t > slowdown_threshold * fastest)
        .map(|(i, _)| i)
        .collect();
    if stragglers.len() == profiles.len() {
        return Err(HeliosError::Identification {
            what: "every device classified as straggler".into(),
        });
    }
    Ok(stragglers)
}

/// Convenience wrapper: resource-based identification over an
/// environment's fleet, using client 0's full-model cycle workload as the
/// common reference workload.
///
/// # Errors
///
/// Same conditions as [`resource_based`].
pub fn resource_based_env(env: &FlEnv, slowdown_threshold: f64) -> Result<Vec<usize>> {
    let workload = env.client(0).map_err(HeliosError::from)?.cycle_workload();
    let profiles: Vec<&ResourceProfile> = (0..env.num_clients())
        .map(|i| env.client(i).map(|c| c.profile()))
        .collect::<std::result::Result<_, _>>()
        .map_err(HeliosError::from)?;
    resource_based(&profiles, &workload, slowdown_threshold)
}

/// Resource-based identification over an environment's fleet using
/// *combined* time — the paper's full `T_e = W/C_cpu + M/V_mc + U/B_n`:
/// the common reference workload evaluated on each device's profile plus
/// the device's expected link transfer time for one round's exchange.
/// Identical to [`resource_based_env`] when networking is disabled or
/// every link is ideal.
///
/// # Errors
///
/// Same conditions as [`resource_based`].
pub fn resource_based_combined(env: &FlEnv, slowdown_threshold: f64) -> Result<Vec<usize>> {
    let cohort: Vec<usize> = (0..env.num_clients()).collect();
    resource_based_combined_cohort(env, &cohort, slowdown_threshold)
}

/// [`resource_based_combined`] restricted to a sampled cohort: combined
/// `compute + comm` time is evaluated only for the cohort's members
/// (slowdown measured against the fastest *cohort* device), so a
/// 100k-device fleet is classified at O(cohort) cost and unmaterialized
/// devices are never touched. The reference workload is the first cohort
/// member's full-model cycle workload. Returns absolute client ids, in
/// cohort order. Over the full fleet this is exactly
/// [`resource_based_combined`].
///
/// # Errors
///
/// Same conditions as [`resource_based`], applied to the cohort, plus an
/// [`HeliosError::Identification`] for an empty cohort.
pub fn resource_based_combined_cohort(
    env: &FlEnv,
    cohort: &[usize],
    slowdown_threshold: f64,
) -> Result<Vec<usize>> {
    if !(slowdown_threshold > 1.0 && slowdown_threshold.is_finite()) {
        return Err(HeliosError::Identification {
            what: format!("slowdown threshold {slowdown_threshold} must exceed 1"),
        });
    }
    let Some(&reference) = cohort.first() else {
        return Err(HeliosError::Identification {
            what: "empty cohort".into(),
        });
    };
    let workload = env
        .client(reference)
        .map_err(HeliosError::from)?
        .cycle_workload();
    let mut times = Vec::with_capacity(cohort.len());
    for &i in cohort {
        let client = env.client(i).map_err(HeliosError::from)?;
        let compute = CostModel::time_for(client.profile(), &workload);
        let comm = env.comm_overhead(i).map_err(HeliosError::from)?;
        times.push((compute + comm).as_secs_f64());
    }
    let fastest = times.iter().copied().fold(f64::INFINITY, f64::min);
    let stragglers: Vec<usize> = cohort
        .iter()
        .zip(&times)
        .filter(|(_, &t)| t > slowdown_threshold * fastest)
        .map(|(&i, _)| i)
        .collect();
    if stragglers.len() == cohort.len() {
        return Err(HeliosError::Identification {
            what: "every device classified as straggler".into(),
        });
    }
    Ok(stragglers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use helios_data::{partition, Dataset, SyntheticVision};
    use helios_device::presets;
    use helios_fl::FlConfig;
    use helios_nn::models::ModelKind;
    use helios_tensor::TensorRng;

    fn env(capable: usize, stragglers: usize) -> FlEnv {
        let mut rng = TensorRng::seed_from(50);
        let clients = capable + stragglers;
        let (train, test) = SyntheticVision::mnist_like()
            .generate(40 * clients, 20, &mut rng)
            .unwrap();
        let shards: Vec<Dataset> = partition::iid(train.len(), clients, &mut rng)
            .into_iter()
            .map(|idx| train.subset(&idx).unwrap())
            .collect();
        FlEnv::new(
            ModelKind::LeNet,
            presets::mixed_fleet(capable, stragglers),
            shards,
            test,
            FlConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn test_bench_ranks_stragglers_first() {
        let e = env(2, 2);
        let index = test_bench_index(&e, 2).unwrap();
        assert_eq!(index.len(), 4);
        // mixed_fleet puts capable devices first (ids 0, 1), stragglers
        // after (ids 2, 3); the index must lead with the stragglers.
        assert!(index[0].client >= 2);
        assert!(index[1].client >= 2);
        assert!(index[0].time >= index[1].time);
    }

    #[test]
    fn time_based_returns_top_k_sorted() {
        let e = env(2, 2);
        assert_eq!(time_based(&e, 2, 2).unwrap(), vec![2, 3]);
        assert_eq!(time_based(&e, 2, 1).unwrap().len(), 1);
        assert!(time_based(&e, 2, 0).is_err());
        assert!(time_based(&e, 2, 4).is_err());
    }

    #[test]
    fn resource_based_finds_slow_profiles() {
        let capable = presets::jetson_nano();
        let s1 = presets::deeplens_cpu();
        let s2 = presets::raspberry_pi();
        let work = TrainingWorkload::new(1e12, 1e9, 1e6);
        let ids = resource_based(&[&capable, &s1, &s2], &work, 1.5).unwrap();
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn resource_based_validates_threshold_and_fleet() {
        let capable = presets::jetson_nano();
        let work = TrainingWorkload::new(1e12, 1e9, 1e6);
        assert!(resource_based(&[&capable], &work, 1.0).is_err());
        assert!(resource_based(&[], &work, 2.0).is_err());
        // Homogeneous fleet: nobody is a straggler.
        let same = presets::jetson_nano();
        let ids = resource_based(&[&capable, &same], &work, 1.5).unwrap();
        assert!(ids.is_empty());
    }

    #[test]
    fn cohort_identification_matches_full_fleet_on_subsets() {
        let e = env(2, 2);
        let full = resource_based_combined(&e, 1.5).unwrap();
        assert_eq!(full, vec![2, 3]);
        // A cohort holding one capable + one straggler flags only the
        // straggler, measured against the cohort's own fastest device.
        assert_eq!(
            resource_based_combined_cohort(&e, &[1, 3], 1.5).unwrap(),
            vec![3]
        );
        // The whole-fleet wrapper is exactly the full-cohort call.
        let all: Vec<usize> = (0..4).collect();
        assert_eq!(resource_based_combined_cohort(&e, &all, 1.5).unwrap(), full);
        assert!(resource_based_combined_cohort(&e, &[], 1.5).is_err());
    }

    #[test]
    fn both_methods_agree_on_mixed_fleet() {
        let e = env(2, 2);
        let by_time = time_based(&e, 2, 2).unwrap();
        let by_resource = resource_based_env(&e, 1.5).unwrap();
        assert_eq!(by_time, by_resource);
    }
}
