//! **Helios** — heterogeneity-aware federated learning with dynamically
//! balanced collaboration (reproduction of Xu, Yu, Xiong & Chen, DAC 2021).
//!
//! Helios removes the FL *straggler* problem without discarding straggler
//! information. Its pipeline (the paper's Fig 3):
//!
//! 1. **Straggler identification** ([`identify`]) — either *time-based
//!    approximation* (black box: rank devices by a lightweight test-bench
//!    timing) or *resource-based profiling* (white box: evaluate the
//!    analytic cost model on each device's resource profile).
//! 2. **Optimization-target determination** ([`target`]) — compute each
//!    straggler's *expected model volume*: the neuron keep-ratio that lets
//!    it finish a training cycle at the capable devices' pace (and within
//!    its memory budget), chosen from predefined levels or fitted by
//!    search against the cost model.
//! 3. **Soft-training** ([`softtrain`]) — each cycle the straggler trains
//!    only `P_i·n_i` neurons per layer: the top `P_s` fraction by
//!    *collaboration contribution* `U^{ij} = |θ(S_k) − θ(S_{k−1})|` (Eq 1)
//!    plus a rotating random remainder (Eq 2), so every neuron keeps
//!    contributing to the global model and no structure is permanently
//!    pruned.
//! 4. **Optimizations** — the skip-cycle regulator (§VI.A) that forces
//!    long-skipped neurons back into training before their selection
//!    probability decays toward zero (its counters are settled once the
//!    round *outcome* is known — a delivered update resets its active
//!    units, a missed cycle increments every counter, so lossy links
//!    cannot starve the regulator), heterogeneity-weighted aggregation
//!    `α_n = r_n / Σ r_n` (Eq 10, [`aggregation`]), and the dynamic-join
//!    scalability manager (§VI.C).
//!
//! Everything is packaged as [`HeliosStrategy`], a drop-in
//! [`helios_fl::Strategy`] that runs against the same environment as the
//! paper's baselines. [`analysis`] provides numeric checks of the §V.B
//! convergence conditions (Prop 2).
//!
//! # Example
//!
//! ```
//! # use std::error::Error;
//! use helios_core::{HeliosConfig, HeliosStrategy};
//! use helios_data::{partition, SyntheticVision};
//! use helios_device::presets;
//! use helios_fl::{FlConfig, FlEnv, Strategy};
//! use helios_nn::models::ModelKind;
//! use helios_tensor::TensorRng;
//!
//! # fn main() -> Result<(), Box<dyn Error>> {
//! let mut rng = TensorRng::seed_from(0);
//! let (train, test) = SyntheticVision::mnist_like().generate(80, 40, &mut rng)?;
//! let shards = partition::iid(train.len(), 2, &mut rng)
//!     .into_iter()
//!     .map(|idx| train.subset(&idx))
//!     .collect::<Result<Vec<_>, _>>()?;
//! let mut env = FlEnv::new(
//!     ModelKind::LeNet,
//!     presets::mixed_fleet(1, 1),
//!     shards,
//!     test,
//!     FlConfig::default(),
//! )?;
//! let mut helios = HeliosStrategy::new(HeliosConfig::default());
//! let metrics = helios.run(&mut env, 2)?;
//! assert_eq!(metrics.records().len(), 2);
//! assert_eq!(helios.stragglers(), &[1]); // the slow device was found
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregation;
pub mod analysis;
mod error;
pub mod identify;
pub mod softtrain;
mod strategy;
pub mod target;

pub use error::HeliosError;
pub use strategy::{AggregationMode, HeliosConfig, HeliosStrategy, Identification, VolumePolicy};

/// Crate-wide result alias carrying a [`HeliosError`].
pub type Result<T> = std::result::Result<T, HeliosError>;
