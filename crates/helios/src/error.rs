//! Error type for the Helios scheduler.

use helios_fl::FlError;
use std::error::Error;
use std::fmt;

/// Error returned by fallible Helios operations.
#[derive(Debug)]
#[non_exhaustive]
pub enum HeliosError {
    /// An underlying federated-learning operation failed.
    Fl(FlError),
    /// Identification produced an unusable straggler set.
    Identification {
        /// Description of the problem.
        what: String,
    },
    /// No feasible model volume exists for a straggler.
    InfeasibleVolume {
        /// Offending client index.
        client: usize,
        /// Description of the violated constraint.
        what: String,
    },
    /// A configuration value is invalid.
    InvalidConfig {
        /// Description of the problem.
        what: String,
    },
}

impl fmt::Display for HeliosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeliosError::Fl(e) => write!(f, "federated operation failed: {e}"),
            HeliosError::Identification { what } => {
                write!(f, "straggler identification failed: {what}")
            }
            HeliosError::InfeasibleVolume { client, what } => {
                write!(f, "no feasible volume for client {client}: {what}")
            }
            HeliosError::InvalidConfig { what } => write!(f, "invalid configuration: {what}"),
        }
    }
}

impl Error for HeliosError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            HeliosError::Fl(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FlError> for HeliosError {
    fn from(e: FlError) -> Self {
        HeliosError::Fl(e)
    }
}

impl From<helios_nn::NnError> for HeliosError {
    fn from(e: helios_nn::NnError) -> Self {
        HeliosError::Fl(FlError::from(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = HeliosError::InfeasibleVolume {
            client: 3,
            what: "memory".into(),
        };
        assert!(e.to_string().contains("client 3"));
        assert!(e.source().is_none());
        let e = HeliosError::from(FlError::InvalidStrategyConfig { what: "x".into() });
        assert!(e.source().is_some());
    }
}
