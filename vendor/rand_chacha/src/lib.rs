//! Vendored std-only ChaCha8 RNG for this workspace.
//!
//! Implements the ChaCha block function (8 rounds, 64-bit block
//! counter) behind the workspace's `rand` traits. Deterministic and
//! statistically sound; not guaranteed bit-identical to upstream
//! `rand_chacha`'s stream (nothing in the workspace depends on that).

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;
/// "expand 32-byte k" as little-endian u32 words.
const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// ChaCha with 8 rounds: fast, seedable, with a 2^64-block period.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key words (seed), kept to rebuild the input state per block.
    key: [u32; 8],
    /// 64-bit block counter of the *next* block to generate.
    counter: u64,
    /// Output words of the current block.
    buf: [u32; 16],
    /// Next unread index into `buf` (16 = exhausted).
    index: usize,
}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut input = [0u32; 16];
        input[..4].copy_from_slice(&CONSTANTS);
        input[4..12].copy_from_slice(&self.key);
        input[12] = self.counter as u32;
        input[13] = (self.counter >> 32) as u32;
        // Nonce words stay zero: each seed gets a single stream.
        let mut state = input;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, (s, i)) in self.buf.iter_mut().zip(state.iter().zip(input.iter())) {
            *out = s.wrapping_add(*i);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.buf[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let bytes = self.next_u32().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "streams should diverge, {same}/64 collisions");
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(99);
        for _ in 0..21 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn output_is_roughly_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut ones = 0u32;
        const N: u32 = 1024;
        for _ in 0..N {
            ones += rng.next_u32().count_ones();
        }
        let frac = ones as f64 / (N as f64 * 32.0);
        assert!((frac - 0.5).abs() < 0.02, "bit bias {frac}");
    }
}
