//! Vendored std-only stand-in for `criterion`: a self-timing harness
//! exposing the API subset this workspace's benches use
//! (`Criterion::default().sample_size(n)`, `benchmark_group`,
//! `bench_function`, `Bencher::iter` / `iter_batched`, `BatchSize`,
//! `criterion_group!`, `criterion_main!`).
//!
//! Each benchmark runs a short calibration to pick an iteration count,
//! then times `sample_size` samples and prints the median and min
//! per-iteration time. No statistical analysis, plots, or saved
//! baselines.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost. The stub times setup and
/// routine together but subtracts nothing; batches are per-iteration
/// for both variants, matching upstream's semantics closely enough for
/// relative comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs (fewer iterations per sample).
    LargeInput,
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
        }
    }
}

/// A named set of benchmarks sharing the driver's configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Times `f` and prints per-iteration statistics.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut samples = Vec::with_capacity(self.criterion.sample_size);
        // Calibration pass: also warms caches.
        let mut b = Bencher::new(1);
        f(&mut b);
        let per_iter = b.elapsed.max(Duration::from_nanos(1));
        // Aim for ~5ms per sample, capped to keep total runtime sane.
        let iters = (Duration::from_millis(5).as_nanos() / per_iter.as_nanos().max(1))
            .clamp(1, 10_000) as u64;
        for _ in 0..self.criterion.sample_size {
            let mut b = Bencher::new(iters);
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = samples[samples.len() / 2];
        let min = samples[0];
        println!(
            "  {}/{id}: median {} min {} ({} samples x {iters} iters)",
            self.name,
            format_secs(median),
            format_secs(min),
            samples.len(),
        );
        self
    }

    /// Ends the group (printing nothing extra).
    pub fn finish(self) {}
}

fn format_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Passed to the benchmark closure; accumulates timed iterations.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    fn new(iters: u64) -> Self {
        Bencher {
            iters,
            elapsed: Duration::ZERO,
        }
    }

    /// Times `iters` calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `iters` calls of `routine`, excluding `setup` time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Declares a benchmark group function, mirroring upstream's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("smoke");
        let mut count = 0u64;
        group.bench_function("noop", |b| b.iter(|| count += 1));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
        assert!(count > 0);
    }
}
