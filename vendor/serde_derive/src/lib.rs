//! Vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! workspace serde stub.
//!
//! Written against `proc_macro` directly (no `syn`/`quote`, which are
//! unavailable offline): the input item is parsed by walking its token
//! trees, and the impl is generated as a string and re-parsed. Supports
//! exactly the shapes this workspace derives on:
//!
//! - structs with named fields (honoring `#[serde(default)]` and
//!   `#[serde(default = "path")]`)
//! - newtype tuple structs
//! - enums of unit variants (serialized as the variant-name string)
//!
//! Anything else (generics, data-carrying enums, other serde
//! attributes) produces a `compile_error!` naming the limitation.

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// How a missing field is filled during deserialization.
enum FieldDefault {
    /// No attribute: the field is required.
    Required,
    /// `#[serde(default)]`: `Default::default()`.
    Std,
    /// `#[serde(default = "path")]`: call `path()`.
    Path(String),
}

struct Field {
    name: String,
    default: FieldDefault,
}

enum Item {
    NamedStruct { name: String, fields: Vec<Field> },
    NewtypeStruct { name: String },
    UnitEnum { name: String, variants: Vec<String> },
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().unwrap(),
        Err(msg) => error(&msg),
    }
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item).parse().unwrap(),
        Err(msg) => error(&msg),
    }
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

// ---- parsing ----

/// Consumes leading outer attributes, returning the `serde(...)` metas
/// found (inner token streams of the parenthesized group).
fn take_attrs(trees: &[TokenTree], pos: &mut usize) -> Result<Vec<TokenStream>, String> {
    let mut serde_metas = Vec::new();
    loop {
        match (trees.get(*pos), trees.get(*pos + 1)) {
            (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if let Some(TokenTree::Ident(id)) = inner.first() {
                    if id.to_string() == "serde" {
                        match inner.get(1) {
                            Some(TokenTree::Group(meta))
                                if meta.delimiter() == Delimiter::Parenthesis =>
                            {
                                serde_metas.push(meta.stream());
                            }
                            _ => return Err("malformed #[serde(...)] attribute".into()),
                        }
                    }
                }
                *pos += 2;
            }
            _ => return Ok(serde_metas),
        }
    }
}

/// Skips an optional `pub` / `pub(...)` visibility prefix.
fn skip_vis(trees: &[TokenTree], pos: &mut usize) {
    if let Some(TokenTree::Ident(id)) = trees.get(*pos) {
        if id.to_string() == "pub" {
            *pos += 1;
            if let Some(TokenTree::Group(g)) = trees.get(*pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *pos += 1;
                }
            }
        }
    }
}

/// Interprets the collected `serde(...)` metas of one field.
fn field_default(metas: &[TokenStream]) -> Result<FieldDefault, String> {
    let mut default = FieldDefault::Required;
    for meta in metas {
        let trees: Vec<TokenTree> = meta.clone().into_iter().collect();
        let mut i = 0;
        while i < trees.len() {
            match &trees[i] {
                TokenTree::Ident(id) if id.to_string() == "default" => {
                    // Either bare `default` or `default = "path"`.
                    if let Some(TokenTree::Punct(p)) = trees.get(i + 1) {
                        if p.as_char() == '=' {
                            match trees.get(i + 2) {
                                Some(TokenTree::Literal(lit)) => {
                                    let s = lit.to_string();
                                    let path = s
                                        .strip_prefix('"')
                                        .and_then(|s| s.strip_suffix('"'))
                                        .ok_or("serde(default = ...) expects a string literal")?;
                                    default = FieldDefault::Path(path.to_string());
                                    i += 3;
                                    continue;
                                }
                                _ => {
                                    return Err(
                                        "serde(default = ...) expects a string literal".into()
                                    )
                                }
                            }
                        }
                    }
                    default = FieldDefault::Std;
                    i += 1;
                }
                TokenTree::Punct(p) if p.as_char() == ',' => i += 1,
                other => {
                    return Err(format!(
                    "unsupported serde attribute `{other}` (stub derive supports only `default`)"
                ))
                }
            }
        }
    }
    Ok(default)
}

/// Parses the fields of a braced (named-field) struct body.
fn parse_named_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let trees: Vec<TokenTree> = body.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < trees.len() {
        let metas = take_attrs(&trees, &mut pos)?;
        if pos >= trees.len() {
            break;
        }
        skip_vis(&trees, &mut pos);
        let name = match trees.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        pos += 1;
        match trees.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        // Skip the type: consume trees until a comma outside angle
        // brackets. Groups are atomic token trees, so only `<`/`>`
        // puncts need depth tracking.
        let mut angle_depth = 0i32;
        while let Some(tree) = trees.get(pos) {
            match tree {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    break;
                }
                _ => {}
            }
            pos += 1;
        }
        pos += 1; // consume the comma (or run off the end)
        fields.push(Field {
            name,
            default: field_default(&metas)?,
        });
    }
    Ok(fields)
}

/// Counts the fields of a parenthesized (tuple) struct body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let trees: Vec<TokenTree> = body.into_iter().collect();
    if trees.is_empty() {
        return 0;
    }
    let mut angle_depth = 0i32;
    let mut commas = 0usize;
    let mut trailing_comma = false;
    for tree in &trees {
        trailing_comma = false;
        match tree {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                commas += 1;
                trailing_comma = true;
            }
            _ => {}
        }
    }
    commas + usize::from(!trailing_comma)
}

/// Parses the variants of an enum body, requiring all to be unit.
fn parse_unit_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let trees: Vec<TokenTree> = body.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < trees.len() {
        take_attrs(&trees, &mut pos)?;
        if pos >= trees.len() {
            break;
        }
        let name = match trees.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        pos += 1;
        match trees.get(pos) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => pos += 1,
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "variant `{name}` carries data; stub derive supports only unit enums"
                ))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                return Err("explicit discriminants are not supported by the stub derive".into())
            }
            other => {
                return Err(format!(
                    "unexpected token after variant `{name}`: {other:?}"
                ))
            }
        }
        variants.push(name);
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let trees: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    take_attrs(&trees, &mut pos)?;
    skip_vis(&trees, &mut pos);
    let kind = match trees.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    pos += 1;
    let name = match trees.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    pos += 1;
    if let Some(TokenTree::Punct(p)) = trees.get(pos) {
        if p.as_char() == '<' {
            return Err(format!(
                "`{name}` is generic; the stub derive supports only non-generic items"
            ));
        }
    }
    match kind.as_str() {
        "struct" => match trees.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::NamedStruct {
                    name,
                    fields: parse_named_fields(g.stream())?,
                })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                match count_tuple_fields(g.stream()) {
                    1 => Ok(Item::NewtypeStruct { name }),
                    n => Err(format!(
                        "`{name}` has {n} tuple fields; stub derive supports only newtypes"
                    )),
                }
            }
            other => Err(format!("unsupported struct body for `{name}`: {other:?}")),
        },
        "enum" => match trees.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::UnitEnum {
                name,
                variants: parse_unit_variants(g.stream())?,
            }),
            other => Err(format!("unsupported enum body for `{name}`: {other:?}")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

// ---- code generation ----

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let mut pushes = String::new();
            for f in fields {
                let fname = &f.name;
                pushes.push_str(&format!(
                    "__fields.push((::std::string::String::from(\"{fname}\"), \
                     ::serde::Serialize::to_value(&self.{fname})));\n"
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::value::Value {{\n\
                         let mut __fields: ::std::vec::Vec<(::std::string::String, \
                            ::serde::value::Value)> = ::std::vec::Vec::new();\n\
                         {pushes}\
                         ::serde::value::Value::Map(__fields)\n\
                     }}\n\
                 }}"
            )
        }
        Item::NewtypeStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::value::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Item::UnitEnum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                arms.push_str(&format!(
                    "{name}::{v} => ::serde::value::Value::Str(\
                     ::std::string::String::from(\"{v}\")),\n"
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::value::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                let fname = &f.name;
                let missing = match &f.default {
                    FieldDefault::Required => format!(
                        "return ::std::result::Result::Err(::serde::de::Error::custom(\
                         \"missing field `{fname}` in {name}\"))"
                    ),
                    FieldDefault::Std => "::std::default::Default::default()".to_string(),
                    FieldDefault::Path(path) => format!("{path}()"),
                };
                inits.push_str(&format!(
                    "{fname}: match ::serde::value::find(__map, \"{fname}\") {{\n\
                         ::std::option::Option::Some(__x) => \
                            ::serde::Deserialize::from_value(__x)?,\n\
                         ::std::option::Option::None => {missing},\n\
                     }},\n"
                ));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::value::Value) \
                        -> ::std::result::Result<Self, ::serde::de::Error> {{\n\
                         let __map = match __v {{\n\
                             ::serde::value::Value::Map(__m) => __m,\n\
                             _ => return ::std::result::Result::Err(\
                                ::serde::de::Error::custom(\"expected map for {name}\")),\n\
                         }};\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::NewtypeStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::value::Value) \
                    -> ::std::result::Result<Self, ::serde::de::Error> {{\n\
                     ::std::result::Result::Ok({name}(\
                        ::serde::Deserialize::from_value(__v)?))\n\
                 }}\n\
             }}"
        ),
        Item::UnitEnum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                arms.push_str(&format!(
                    "\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n"
                ));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::value::Value) \
                        -> ::std::result::Result<Self, ::serde::de::Error> {{\n\
                         match __v {{\n\
                             ::serde::value::Value::Str(__s) => match __s.as_str() {{\n\
                                 {arms}\
                                 __other => ::std::result::Result::Err(\
                                    ::serde::de::Error::custom(::std::format!(\
                                    \"unknown variant `{{}}` for {name}\", __other))),\n\
                             }},\n\
                             _ => ::std::result::Result::Err(::serde::de::Error::custom(\
                                \"expected string for enum {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
