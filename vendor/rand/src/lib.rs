//! Vendored std-only stub of the `rand` 0.8 API subset used by this
//! workspace. See `vendor/README.md` for why this exists.
//!
//! Provided surface: [`RngCore`], [`SeedableRng`] (with
//! `seed_from_u64`), [`Rng::gen`] / [`Rng::gen_range`], the
//! [`distributions::Standard`] distribution for the primitive types the
//! workspace samples, and uniform range sampling for integer and float
//! ranges.

#![forbid(unsafe_code)]

/// Low-level source of randomness: a stream of `u32`/`u64` words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// An RNG constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (e.g. `[u8; 32]`).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG from a `u64`, expanding it to a full seed with a
    /// SplitMix64 stream (deterministic; independent of upstream rand's
    /// exact expansion).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: used only for seed expansion.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

pub mod distributions {
    //! The [`Standard`] distribution and uniform range sampling.

    use crate::RngCore;

    /// Types that can produce a `T` from an RNG.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution for a type: full range for integers,
    /// uniform `[0, 1)` for floats.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<u8> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u8 {
            rng.next_u32() as u8
        }
    }
    impl Distribution<u16> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u16 {
            rng.next_u32() as u16
        }
    }
    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }
    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }
    impl Distribution<usize> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            rng.next_u64() as usize
        }
    }
    impl Distribution<i32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i32 {
            rng.next_u32() as i32
        }
    }
    impl Distribution<i64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i64 {
            rng.next_u64() as i64
        }
    }
    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u32() & 1 == 1
        }
    }
    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            // 24 high bits -> uniform [0, 1) with full f32 mantissa.
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }
    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 high bits -> uniform [0, 1) with full f64 mantissa.
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    pub mod uniform {
        //! Range sampling used by `Rng::gen_range`.

        use super::{Distribution, Standard};
        use crate::RngCore;
        use std::ops::{Range, RangeInclusive};

        /// Range types `Rng::gen_range` accepts.
        pub trait SampleRange<T> {
            /// Draws one value from the range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        /// Uniform `u64` in `[0, n)` via Lemire-style rejection on the
        /// modulo zone (unbiased).
        fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
            debug_assert!(n > 0);
            // Accept draws below the largest multiple of n representable
            // in u64 arithmetic to remove modulo bias. When n divides
            // 2^64 the remainder is 0 and every draw is accepted.
            let rem = (u64::MAX % n + 1) % n;
            let zone = u64::MAX - rem; // == largest_multiple(n) - 1, or u64::MAX
            loop {
                let v = rng.next_u64();
                if v <= zone {
                    return v % n;
                }
            }
        }

        macro_rules! impl_int_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(
                            self.start < self.end,
                            "cannot sample empty range"
                        );
                        let span = (self.end as u64).wrapping_sub(self.start as u64);
                        self.start.wrapping_add(uniform_u64_below(rng, span) as $t)
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "cannot sample empty range");
                        let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                        if span == 0 {
                            // Full-width range: every value is valid.
                            return rng.next_u64() as $t;
                        }
                        lo.wrapping_add(uniform_u64_below(rng, span) as $t)
                    }
                }
            )*};
        }

        impl_int_range!(u8, u16, u32, u64, usize, i32, i64, isize);

        macro_rules! impl_float_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(
                            self.start < self.end,
                            "cannot sample empty range"
                        );
                        let unit: $t = Standard.sample(rng);
                        let v = self.start + (self.end - self.start) * unit;
                        // Rounding can land exactly on the (exclusive)
                        // upper bound; nudge back inside.
                        if v >= self.end {
                            self.end.next_down().max(self.start)
                        } else {
                            v
                        }
                    }
                }
            )*};
        }

        impl_float_range!(f32, f64);
    }
}

/// User-facing convenience methods, blanket-implemented for all RNGs.
pub trait Rng: RngCore {
    /// Samples a value via the [`distributions::Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, RA>(&mut self, range: RA) -> T
    where
        RA: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        let unit: f64 = self.gen();
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::distributions::uniform::SampleRange;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let b = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&b[..n]);
            }
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w: usize = rng.gen_range(0usize..=4);
            assert!(w <= 4);
            let f: f32 = rng.gen_range(0.25f32..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f32 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    #[should_panic(expected = "cannot sample empty range")]
    fn empty_range_panics() {
        let mut rng = Counter(1);
        let _: usize = (5usize..5).sample_single(&mut rng);
    }
}
