//! Vendored std-only property-testing harness exposing the `proptest`
//! API subset this workspace uses: the [`proptest!`] macro,
//! `prop_assert*`, range/tuple strategies, `collection::vec`, and
//! `prop_map`/`prop_flat_map`.
//!
//! Differences from upstream: a fixed number of cases per property
//! ([`NUM_CASES`]), no shrinking, and a deterministic per-test RNG
//! seeded from the test's name, so failures reproduce exactly.

#![forbid(unsafe_code)]

/// Number of generated cases per property.
pub const NUM_CASES: usize = 32;

pub mod test_runner {
    //! Deterministic RNG driving value generation.

    /// SplitMix64 generator seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from a test name (FNV-1a hash), so each property gets
        /// its own reproducible stream.
        pub fn from_name(name: &str) -> Self {
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: hash }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform integer in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            let rem = (u64::MAX % n + 1) % n;
            let zone = u64::MAX - rem;
            loop {
                let v = self.next_u64();
                if v <= zone {
                    return v % n;
                }
            }
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Builds a dependent strategy from each generated value.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    impl_int_strategy!(u8, u16, u32, u64, usize, i32, i64, isize);

    macro_rules! impl_float_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let unit = rng.unit_f64() as $t;
                    let v = self.start + (self.end - self.start) * unit;
                    if v >= self.end {
                        self.end.next_down().max(self.start)
                    } else {
                        v
                    }
                }
            }
        )*};
    }

    impl_float_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Accepted size specifications for [`vec`]: a fixed length or a
    /// (half-open / inclusive) range of lengths.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Generates `Vec`s whose elements come from `element` and whose
    /// length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::strategy::Strategy;
    pub use crate::test_runner::TestRng;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`NUM_CASES`] generated cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                #[allow(unused_imports)]
                use $crate::strategy::Strategy as _;
                let __strategies = ($($strat,)+);
                let ($($arg,)+) = &__strategies;
                let mut __rng = $crate::test_runner::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for _ in 0..$crate::NUM_CASES {
                    $(let $arg = $arg.generate(&mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// `assert!` under a proptest-flavored name.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` under a proptest-flavored name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` under a proptest-flavored name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(
            n in 3usize..9,
            m in 1usize..=4,
            f in -2.0f32..2.0,
            seed in 0u64..100,
        ) {
            prop_assert!((3..9).contains(&n));
            prop_assert!((1..=4).contains(&m));
            prop_assert!((-2.0..2.0).contains(&f));
            prop_assert!(seed < 100);
        }

        #[test]
        fn vec_lengths_respect_size_range(
            v in crate::collection::vec(0usize..10, 2..5),
            w in crate::collection::vec(0.0f64..1.0, 3usize),
        ) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert_eq!(w.len(), 3);
        }

        #[test]
        fn flat_map_links_size_to_content(
            v in (1usize..6).prop_flat_map(|n| {
                crate::collection::vec(0usize..10, n).prop_map(move |v| (n, v))
            }),
        ) {
            let (n, items) = v;
            prop_assert_eq!(items.len(), n);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
