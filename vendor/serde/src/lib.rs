//! Vendored std-only stub of `serde` for this workspace.
//!
//! Instead of the real crate's serializer/visitor architecture, this
//! stub converts values to and from an in-memory [`value::Value`] tree.
//! That is safe here because every consumer of these traits is also
//! vendored in this workspace (`serde_derive`, `serde_json`), so no
//! external code ever observes the API difference.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

pub mod value {
    //! The in-memory data model all (de)serialization goes through.

    /// A JSON-shaped value tree.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Signed integer (used when the source was negative).
        Int(i64),
        /// Unsigned integer.
        UInt(u64),
        /// Floating-point number.
        Float(f64),
        /// String.
        Str(String),
        /// Array.
        Seq(Vec<Value>),
        /// Object, as ordered key/value pairs (preserves field order).
        Map(Vec<(String, Value)>),
    }

    /// Looks up `key` in an object's pair list.
    pub fn find<'a>(map: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
        map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

pub mod de {
    //! Deserialization error type.

    use std::fmt;

    /// A deserialization failure with a human-readable message.
    #[derive(Debug, Clone)]
    pub struct Error(String);

    impl Error {
        /// Builds an error from any displayable message.
        pub fn custom<T: fmt::Display>(msg: T) -> Self {
            Error(msg.to_string())
        }
    }

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for Error {}
}

use value::Value;

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Conversion out of the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, de::Error>;
}

// ---- Serialize impls for primitives and std containers ----

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
    )*};
}
impl_ser_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        }
    )*};
}
impl_ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}
impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

/// A `Value` serializes as itself, so callers can build raw JSON trees.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

/// A `Value` deserializes as itself, so callers can inspect arbitrary
/// JSON without declaring a schema.
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        Ok(v.clone())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

// ---- Deserialize impls ----

fn int_from(v: &Value, what: &str) -> Result<i64, de::Error> {
    match v {
        Value::UInt(u) => {
            i64::try_from(*u).map_err(|_| de::Error::custom(format!("{u} out of range for {what}")))
        }
        Value::Int(i) => Ok(*i),
        Value::Float(f) if f.fract() == 0.0 && f.abs() < 9.2e18 => Ok(*f as i64),
        other => Err(de::Error::custom(format!(
            "expected {what}, found {other:?}"
        ))),
    }
}

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                let raw = int_from(v, stringify!($t))?;
                <$t>::try_from(raw).map_err(|_| {
                    de::Error::custom(format!(
                        "{raw} out of range for {}", stringify!($t)
                    ))
                })
            }
        }
    )*};
}
impl_de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::UInt(u) => Ok(*u as f64),
            Value::Int(i) => Ok(*i as f64),
            other => Err(de::Error::custom(format!(
                "expected number, found {other:?}"
            ))),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(de::Error::custom(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(de::Error::custom(format!(
                "expected string, found {other:?}"
            ))),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(de::Error::custom(format!(
                "expected sequence, found {other:?}"
            ))),
        }
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Seq(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(de::Error::custom(format!(
                "expected 2-element sequence, found {other:?}"
            ))),
        }
    }
}
