//! Vendored std-only JSON support for this workspace: renders and
//! parses the workspace serde stub's `Value` tree.

#![forbid(unsafe_code)]

use serde::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A JSON (de)serialization failure.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::de::Error> for Error {
    fn from(e: serde::de::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as two-space-indented JSON.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(T::from_value(&value)?)
}

// ---- writer ----

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` prints the shortest roundtrip form, keeping a
                // ".0" on integral values the way serde_json does.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at offset {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let mut code = self.parse_hex4()? as u32;
                            // Surrogate pair.
                            if (0xd800..0xdc00).contains(&code) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.parse_hex4()? as u32;
                                    code = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            }
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?,
                            );
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    let chunk = std::str::from_utf8(&rest[..len.min(rest.len())])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    s.push_str(chunk);
                    self.pos += chunk.len();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u16, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code = u16::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number text");
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(i) = stripped.parse::<i64>() {
                    return Ok(if i == 0 {
                        Value::UInt(0)
                    } else {
                        Value::Int(-i)
                    });
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("invalid number `{text}` at offset {start}")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_value_tree() {
        let v = Value::Map(vec![
            ("name".into(), Value::Str("lenet \"v1\"\n".into())),
            ("count".into(), Value::UInt(3)),
            ("delta".into(), Value::Int(-7)),
            ("lr".into(), Value::Float(0.05)),
            (
                "dims".into(),
                Value::Seq(vec![Value::UInt(1), Value::UInt(28)]),
            ),
            ("mask".into(), Value::Null),
            ("flag".into(), Value::Bool(true)),
        ]);
        let mut compact = String::new();
        write_value(&mut compact, &v, None, 0);
        let mut p = Parser {
            bytes: compact.as_bytes(),
            pos: 0,
        };
        assert_eq!(p.parse_value().unwrap(), v);

        let mut pretty = String::new();
        write_value(&mut pretty, &v, Some(2), 0);
        let mut p = Parser {
            bytes: pretty.as_bytes(),
            pos: 0,
        };
        assert_eq!(p.parse_value().unwrap(), v);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<f64>("1.5 x").is_err());
        assert!(from_str::<bool>("truex").is_err());
    }

    #[test]
    fn float_formatting_keeps_point() {
        let mut out = String::new();
        write_value(&mut out, &Value::Float(1.0), None, 0);
        assert_eq!(out, "1.0");
    }

    #[test]
    fn parses_nested_and_escapes() {
        let v: Vec<f64> = from_str("[1, 2.5, -3]").unwrap();
        assert_eq!(v, vec![1.0, 2.5, -3.0]);
        let s: String = from_str(r#""aA\né""#).unwrap();
        assert_eq!(s, "aA\né");
    }
}
