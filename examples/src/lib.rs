//! Runnable examples for the Helios workspace.
//!
//! Each binary in `src/bin/` exercises the public API on one scenario:
//!
//! - `quickstart` — smallest end-to-end run: 2 devices, 1 straggler,
//!   Helios vs synchronized FedAvg;
//! - `heterogeneous_fleet` — the paper's Table I fleet: profile devices,
//!   identify stragglers both ways, fit volumes, and train;
//! - `non_iid_collaboration` — label-skewed shards where the straggler
//!   holds unique classes, comparing straggler-handling strategies;
//! - `dynamic_join` — devices joining mid-collaboration (§VI.C), admitted
//!   and classified by the scalability manager.
//!
//! Run one with `cargo run -p helios-examples --bin quickstart --release`.
