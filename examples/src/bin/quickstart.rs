//! Quickstart: the smallest end-to-end Helios run.
//!
//! Builds a 2-device fleet (one capable Jetson Nano, one DeepLens-class
//! straggler), generates an MNIST-like synthetic dataset, and compares
//! synchronized FedAvg against Helios for 10 aggregation cycles.
//!
//! ```text
//! cargo run -p helios-examples --bin quickstart --release
//! ```

use helios_core::{HeliosConfig, HeliosStrategy};
use helios_data::{partition, Dataset, SyntheticVision};
use helios_device::presets;
use helios_fl::{FlConfig, FlEnv, Strategy, SyncFedAvg};
use helios_nn::models::ModelKind;
use helios_tensor::TensorRng;
use std::error::Error;

fn build_env(seed: u64) -> Result<FlEnv, Box<dyn Error>> {
    // 1. Synthetic MNIST-like data: 10 classes, 1×16×16 images.
    let mut rng = TensorRng::seed_from(seed);
    let (train, test) = SyntheticVision::mnist_like().generate(240, 120, &mut rng)?;

    // 2. Two IID shards, one per device.
    let shards: Vec<Dataset> = partition::iid(train.len(), 2, &mut rng)
        .into_iter()
        .map(|idx| train.subset(&idx))
        .collect::<Result<_, _>>()?;

    // 3. A capable device plus one straggler from the paper's Table I.
    let fleet = vec![presets::jetson_nano(), presets::deeplens_cpu()];

    Ok(FlEnv::new(
        ModelKind::LeNet,
        fleet,
        shards,
        test,
        FlConfig {
            seed,
            ..FlConfig::default()
        },
    )?)
}

fn main() -> Result<(), Box<dyn Error>> {
    let cycles = 10;

    // Baseline: synchronized FedAvg waits for the straggler every cycle.
    let mut env = build_env(7)?;
    let sync = SyncFedAvg::new().run(&mut env, cycles)?;

    // Helios: identify the straggler, fit its model volume, soft-train.
    let mut env = build_env(7)?;
    let mut helios = HeliosStrategy::new(HeliosConfig::default());
    let metrics = helios.run(&mut env, cycles)?;

    println!("identified stragglers : {:?}", helios.stragglers());
    println!(
        "straggler volume      : {:.0}% of neurons per cycle",
        helios.keep_ratio(1).unwrap_or(1.0) * 100.0
    );
    println!("capable-pace deadline : {}", helios.deadline());
    println!();
    println!(
        "{:<14} {:>10} {:>12} {:>12}",
        "strategy", "accuracy", "sim time", "per cycle"
    );
    for m in [&sync, &metrics] {
        let per_cycle = m.total_time().as_secs_f64() / cycles as f64;
        println!(
            "{:<14} {:>9.1}% {:>12} {:>11.1}s",
            m.strategy(),
            m.best_accuracy() * 100.0,
            m.total_time().to_string(),
            per_cycle
        );
    }
    println!(
        "\nHelios finishes {:.1}x faster in simulated time at comparable accuracy.",
        sync.total_time().as_secs_f64() / metrics.total_time().as_secs_f64()
    );
    Ok(())
}
