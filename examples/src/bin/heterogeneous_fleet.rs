//! Heterogeneous fleet walkthrough: profiling, identification, and
//! volume planning on the paper's Table I devices.
//!
//! Demonstrates the two identification paths (time-based black box vs
//! resource-based white box), the analytic cost model, and resource-fitted
//! volume determination — the §IV pipeline — before running a short
//! collaboration.
//!
//! ```text
//! cargo run -p helios-examples --bin heterogeneous_fleet --release
//! ```

use helios_core::{identify, target, HeliosConfig, HeliosStrategy};
use helios_data::{partition, Dataset, SyntheticVision};
use helios_device::presets;
use helios_fl::{FlConfig, FlEnv, Strategy};
use helios_nn::models::ModelKind;
use helios_tensor::TensorRng;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // Fleet: 2 full-power Jetson Nanos + all four Table I stragglers.
    let fleet = presets::mixed_fleet(2, 4);
    let clients = fleet.len();

    let mut rng = TensorRng::seed_from(11);
    let (train, test) = SyntheticVision::cifar10_like().generate(120 * clients, 120, &mut rng)?;
    let shards: Vec<Dataset> = partition::iid(train.len(), clients, &mut rng)
        .into_iter()
        .map(|idx| train.subset(&idx))
        .collect::<Result<_, _>>()?;
    let mut env = FlEnv::new(
        ModelKind::AlexNet,
        fleet,
        shards,
        test,
        FlConfig {
            seed: 11,
            ..FlConfig::default()
        },
    )?;

    // --- §IV.B straggler identification, both ways -----------------------
    println!("time-based test bench (2 iterations), longest first:");
    for entry in identify::test_bench_index(&env, 2)? {
        let name = env.client(entry.client)?.profile().name().to_string();
        println!("  client {} ({name}): {}", entry.client, entry.time);
    }
    let black_box = identify::time_based(&env, 2, 4)?;
    let white_box = identify::resource_based_env(&env, 1.5)?;
    println!("black-box stragglers : {black_box:?}");
    println!("white-box stragglers : {white_box:?}");
    assert_eq!(black_box, white_box, "both methods agree on this fleet");

    // --- §IV.C volume determination --------------------------------------
    let deadline = env.client(0)?.cycle_time();
    println!("\ncapable pace: {deadline} per cycle");
    println!(
        "{:<28} {:>12} {:>12} {:>12}",
        "device", "full cycle", "keep", "masked"
    );
    for &i in &white_box {
        let full = env.client(i)?.cycle_time();
        let keep = target::fitted_keep_ratio(env.client_mut(i)?, deadline)?;
        let masked = target::masked_cycle_time(env.client_mut(i)?, keep)?;
        let name = env.client(i)?.profile().name().to_string();
        println!(
            "{name:<28} {:>12} {:>11.0}% {:>12}",
            full.to_string(),
            keep * 100.0,
            masked.to_string()
        );
    }

    // --- the full pipeline, end to end ------------------------------------
    let mut helios = HeliosStrategy::new(HeliosConfig::default());
    let metrics = helios.run(&mut env, 8)?;
    println!(
        "\n8 cycles of Helios: best accuracy {:.1}%, total simulated time {}",
        metrics.best_accuracy() * 100.0,
        metrics.total_time()
    );
    Ok(())
}
