//! Non-IID collaboration: why discarding stragglers loses information.
//!
//! Each device holds a label-skewed shard (the Zhao et al. sort-by-label
//! split), so the straggler owns classes nobody else has. Asynchronous FL,
//! which sidelines the straggler, visibly loses those classes; Helios
//! keeps the straggler synchronized at a reduced volume and preserves
//! them — the paper's §II.A information-heterogeneity argument and Fig 7
//! evaluation.
//!
//! ```text
//! cargo run -p helios-examples --bin non_iid_collaboration --release
//! ```

use helios_core::{HeliosConfig, HeliosStrategy};
use helios_data::{partition, Dataset, SyntheticVision};
use helios_device::presets;
use helios_fl::{AsyncFl, FlConfig, FlEnv, Strategy, SyncFedAvg};
use helios_nn::models::ModelKind;
use helios_tensor::TensorRng;
use std::error::Error;

fn build_env(seed: u64) -> Result<FlEnv, Box<dyn Error>> {
    let clients = 4;
    let mut rng = TensorRng::seed_from(seed);
    let (train, test) = SyntheticVision::mnist_like().generate(150 * clients, 200, &mut rng)?;
    // 2 label shards per client → each device sees ~2-3 classes.
    let shards: Vec<Dataset> = partition::label_shards(train.labels(), clients, 2, &mut rng)?
        .into_iter()
        .map(|idx| train.subset(&idx))
        .collect::<Result<_, _>>()?;
    for (i, s) in shards.iter().enumerate() {
        let classes: Vec<usize> = s
            .class_counts()
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(l, _)| l)
            .collect();
        println!("client {i} holds classes {classes:?}");
    }
    Ok(FlEnv::new(
        ModelKind::LeNet,
        presets::mixed_fleet(2, 2),
        shards,
        test,
        FlConfig {
            seed,
            learning_rate: 0.03,
            ..FlConfig::default()
        },
    )?)
}

fn main() -> Result<(), Box<dyn Error>> {
    let cycles = 25;
    let seed = 5;

    let mut env = build_env(seed)?;
    let sync = SyncFedAvg::new().run(&mut env, cycles)?;

    let mut env = build_env(seed)?;
    let asyn = AsyncFl::new(vec![2, 3]).run(&mut env, cycles)?;

    let mut env = build_env(seed)?;
    let helios = HeliosStrategy::new(HeliosConfig::default()).run(&mut env, cycles)?;

    println!(
        "\n{:<14} {:>12} {:>12} {:>12}",
        "strategy", "tail acc", "sim time", "acc/hour"
    );
    for m in [&sync, &asyn, &helios] {
        let hours = m.total_time().as_hours_f64().max(1e-9);
        println!(
            "{:<14} {:>11.1}% {:>12} {:>12.2}",
            m.strategy(),
            m.tail_accuracy(3) * 100.0,
            m.total_time().to_string(),
            m.tail_accuracy(3) / hours
        );
    }
    println!(
        "\nasync loses {:.1} accuracy points to sync by sidelining the straggler's",
        (sync.tail_accuracy(3) - asyn.tail_accuracy(3)) * 100.0
    );
    println!(
        "unique classes; Helios recovers {:.1} of them while staying {:.1}x faster than sync.",
        (helios.tail_accuracy(3) - asyn.tail_accuracy(3)) * 100.0,
        sync.total_time().as_secs_f64() / helios.total_time().as_secs_f64()
    );
    Ok(())
}
