//! Dynamic device join (§VI.C): scalability of the collaboration,
//! driven by the declarative scenario engine.
//!
//! A 2-device lazy fleet runs ten cycles under a scenario timeline that
//! joins two synthesized newcomers at cycle 5. The round driver applies
//! the churn events itself — no bespoke admission calls — and Helios
//! classifies each newcomer against the established capable pace the
//! first time it appears in a cohort, assigning stragglers a fitted
//! volume before they train.
//!
//! ```text
//! cargo run -p helios-examples --bin dynamic_join --release
//! ```
//!
//! Pinned output (re-pinned when the bespoke admission flow was replaced
//! by the scenario timeline; the fleet is now synthesized from seed 33
//! instead of hand-picked presets, so the classifications changed):
//!
//! ```text
//! cycle 4: 2 participants; cycle 5 (post-join): 4 participants
//! joined client 2: classified straggler = false, volume = 100%
//! joined client 3: classified straggler = true, volume = 45%
//! final fleet: 4 devices, best accuracy 59.3%
//! cycle time stayed at the capable pace: 1.41s per cycle
//! ```

use helios_core::{HeliosConfig, HeliosStrategy};
use helios_data::{ShardSynthesizer, SyntheticVision};
use helios_device::ProfileSynthesizer;
use helios_fl::{ChurnAction, ChurnEvent, FlConfig, FlEnv, FleetSpec, ScenarioConfig, Strategy};
use helios_nn::models::ModelKind;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // The population is described, not stored: the two initial devices
    // and both newcomers come from the same pure per-device generators.
    let spec = FleetSpec::new(
        2,
        ProfileSynthesizer::new(33, 0.5),
        ShardSynthesizer::new(SyntheticVision::mnist_like(), 8, 33)?,
    );
    let test = spec.shards.test_set(150)?;

    // The entire dynamic-join flow is configuration.
    let scenario = ScenarioConfig {
        churn: vec![ChurnEvent {
            cycle: 5,
            action: ChurnAction::Join,
            device: 0, // unused for joins
            count: 2,
        }],
        ..ScenarioConfig::default()
    };
    let mut env = FlEnv::new_lazy(
        ModelKind::LeNet,
        spec,
        test,
        FlConfig {
            seed: 33,
            scenario,
            ..FlConfig::default()
        },
    )?;

    let mut helios = HeliosStrategy::new(HeliosConfig::default());
    let metrics = helios.run(&mut env, 10)?;

    let before = metrics.records()[4].participants;
    let after = metrics.records()[5].participants;
    println!("cycle 4: {before} participants; cycle 5 (post-join): {after} participants");
    for id in 2..env.num_clients() {
        println!(
            "joined client {id}: classified straggler = {}, volume = {:.0}%",
            helios.stragglers().contains(&id),
            helios.keep_ratio(id).unwrap_or(1.0) * 100.0
        );
    }
    println!(
        "final fleet: {} devices, best accuracy {:.1}%",
        env.num_clients(),
        metrics.best_accuracy() * 100.0
    );
    println!(
        "cycle time stayed at the capable pace: {} per cycle",
        helios.deadline()
    );
    Ok(())
}
