//! Dynamic device join (§VI.C): scalability of the collaboration.
//!
//! Starts a 2-device collaboration, then admits two newcomers mid-run —
//! one capable, one straggler-class. Helios's scalability manager
//! classifies each against the established capable pace and assigns the
//! straggler a fitted volume before it joins the next cycle.
//!
//! ```text
//! cargo run -p helios-examples --bin dynamic_join --release
//! ```

use helios_core::{HeliosConfig, HeliosStrategy};
use helios_data::{partition, Dataset, SyntheticVision};
use helios_device::presets;
use helios_fl::{FlConfig, FlEnv, Strategy};
use helios_nn::models::ModelKind;
use helios_tensor::TensorRng;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let mut rng = TensorRng::seed_from(21);
    let (train, test) = SyntheticVision::mnist_like().generate(480, 150, &mut rng)?;
    let all_shards: Vec<Dataset> = partition::iid(train.len(), 4, &mut rng)
        .into_iter()
        .map(|idx| train.subset(&idx))
        .collect::<Result<_, _>>()?;
    let mut shards = all_shards.into_iter();
    let initial: Vec<Dataset> = shards.by_ref().take(2).collect();

    let mut env = FlEnv::new(
        ModelKind::LeNet,
        presets::mixed_fleet(1, 1),
        initial,
        test,
        FlConfig {
            seed: 21,
            ..FlConfig::default()
        },
    )?;

    let mut helios = HeliosStrategy::new(HeliosConfig::default());
    let phase1 = helios.run(&mut env, 5)?;
    println!(
        "phase 1 (2 devices, 5 cycles): accuracy {:.1}%, stragglers {:?}",
        phase1.best_accuracy() * 100.0,
        helios.stragglers()
    );

    // A straggler-class DeepLens joins …
    let shard = shards.next().expect("two shards reserved for joiners");
    let id = helios.admit_device(&mut env, presets::deeplens_gpu(), shard)?;
    println!(
        "admitted client {id} (deeplens-gpu): classified straggler = {}, volume = {:.0}%",
        helios.stragglers().contains(&id),
        helios.keep_ratio(id).unwrap_or(1.0) * 100.0
    );

    // … and a capable Nano joins.
    let shard = shards.next().expect("one shard left");
    let id2 = helios.admit_device(&mut env, presets::jetson_nano(), shard)?;
    println!(
        "admitted client {id2} (jetson-nano): classified straggler = {}",
        helios.stragglers().contains(&id2)
    );

    let phase2 = helios.run(&mut env, 5)?;
    println!(
        "phase 2 (4 devices, 5 cycles): accuracy {:.1}%, {} participants per cycle",
        phase2.best_accuracy() * 100.0,
        phase2.records().last().map_or(0, |r| r.participants)
    );
    println!(
        "cycle time stayed at the capable pace: {} per cycle",
        helios.deadline()
    );
    Ok(())
}
